(* The persistent unit store: blob framing, cold/warm byte-identity
   through a real session, resilience to garbage in the store,
   concurrent writers, oldest-access-first GC, and silent degrade when
   a cache peer is unreachable. *)

open Fg_util
module C = Fg_core

let fresh_root =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "fgdisk-%d-%d" (Unix.getpid ()) !n)
    in
    (* best-effort clean slate; open_store recreates it *)
    (match Sys.readdir d with
    | entries ->
        Array.iter
          (fun shard ->
            let sd = Filename.concat d shard in
            (match Sys.readdir sd with
            | files ->
                Array.iter
                  (fun f -> try Sys.remove (Filename.concat sd f)
                            with Sys_error _ -> ())
                  files
            | exception Sys_error _ -> ());
            try Unix.rmdir sd with Unix.Unix_error _ -> ())
          entries
    | exception Sys_error _ -> ());
    d

(* ---------------------------------------------------------------- *)
(* Blob framing                                                      *)

let test_blob_roundtrip () =
  let body = "payload with \x00 bytes and\nnewlines" in
  let blob = C.Diskcache.encode_blob body in
  (match C.Diskcache.decode_blob blob with
  | Some b -> Alcotest.(check string) "roundtrip" body b
  | None -> Alcotest.fail "freshly encoded blob must decode");
  (* a flipped body byte fails the digest *)
  let corrupt = Bytes.of_string blob in
  let last = Bytes.length corrupt - 1 in
  Bytes.set corrupt last
    (if Bytes.get corrupt last = 'x' then 'y' else 'x');
  Alcotest.(check bool) "corrupt body rejected" true
    (C.Diskcache.decode_blob (Bytes.to_string corrupt) = None);
  (* a foreign stamp (other build / format version) fails outright *)
  Alcotest.(check bool) "foreign stamp rejected" true
    (C.Diskcache.decode_blob
       ("fgcache 999 5.1.0 deadbeef\n"
       ^ Digest.to_hex (Digest.string body)
       ^ "\n" ^ body)
    = None);
  Alcotest.(check bool) "truncation rejected" true
    (C.Diskcache.decode_blob (String.sub blob 0 (String.length blob / 2))
    = None)

let test_get_put () =
  let d = C.Diskcache.open_store (fresh_root ()) in
  let key = Digest.string "some unit" in
  Alcotest.(check bool) "empty store misses" true
    (C.Diskcache.get d key = None);
  C.Diskcache.put d key "unit body";
  Alcotest.(check (option string)) "stored body comes back"
    (Some "unit body") (C.Diskcache.get d key);
  let s = C.Diskcache.stats d in
  Alcotest.(check int) "one hit" 1 s.C.Diskcache.d_hits;
  Alcotest.(check int) "one miss" 1 s.C.Diskcache.d_misses;
  Alcotest.(check int) "one entry" 1 s.C.Diskcache.d_entries;
  (* scribbling over the entry reads as a (counted) corrupt miss and
     removes the file *)
  let path = C.Diskcache.entry_path d key in
  let oc = open_out_bin path in
  output_string oc "not a blob";
  close_out oc;
  Alcotest.(check bool) "corrupt entry is a miss" true
    (C.Diskcache.get d key = None);
  Alcotest.(check int) "corrupt counted" 1
    (C.Diskcache.stats d).C.Diskcache.d_corrupt;
  Alcotest.(check bool) "corrupt entry unlinked" false
    (Sys.file_exists path)

(* ---------------------------------------------------------------- *)
(* Through a session                                                 *)

let program =
  "accumulate[int](cons[int](1, cons[int](2, nil[int]))) + power[int](3, 3)"

let session ?cache_dir () =
  let module Cfg = C.Session.Config in
  C.Session.of_config
    (Cfg.default |> Cfg.with_standard_prelude
    |> Cfg.with_cache_dir cache_dir)

let rendered s =
  let report = C.Session.run_full ~file:"<t>" s program in
  Json.to_string (C.Jsonview.json_of_run_report ~file:"<t>" report)

let test_cold_warm_byte_identity () =
  let root = fresh_root () in
  let baseline = rendered (session ()) in
  let cold = rendered (session ~cache_dir:root ()) in
  Alcotest.(check string) "cold run matches uncached" baseline cold;
  let warm_s = session ~cache_dir:root () in
  let warm = rendered warm_s in
  Alcotest.(check string) "warm run matches uncached" baseline warm;
  (* the warm process re-checked nothing: every unit (prelude and
     program alike) replayed from disk *)
  let st = C.Session.cache_stats warm_s in
  Alcotest.(check int) "zero unit re-checks when warm" 0
    st.C.Unit.s_misses;
  Alcotest.(check bool) "warm units are hits" true (st.C.Unit.s_hits > 0)

let test_garbage_in_store () =
  let root = fresh_root () in
  let baseline = rendered (session ()) in
  ignore (rendered (session ~cache_dir:root ()));
  (* scribble over every entry the cold run wrote *)
  let clobbered = ref 0 in
  Array.iter
    (fun shard ->
      let sd = Filename.concat root shard in
      if try Sys.is_directory sd with Sys_error _ -> false then
        Array.iter
          (fun f ->
            let oc = open_out_bin (Filename.concat sd f) in
            output_string oc "garbage garbage garbage";
            close_out oc;
            incr clobbered)
          (Sys.readdir sd))
    (Sys.readdir root);
  Alcotest.(check bool) "store had entries to clobber" true (!clobbered > 0);
  let before = Telemetry.snapshot () in
  let s = session ~cache_dir:root () in
  Alcotest.(check string) "compilation survives a garbage store" baseline
    (rendered s);
  let d = Telemetry.diff (Telemetry.snapshot ()) before in
  Alcotest.(check bool) "corrupt entries counted" true
    (d.Telemetry.corrupt_entries > 0)

(* ---------------------------------------------------------------- *)
(* Concurrency and GC                                                *)

let test_concurrent_writers () =
  let root = fresh_root () in
  let key = Digest.string "contended" in
  let body = String.concat "" (List.init 64 (fun i -> string_of_int i)) in
  let writer () =
    let d = C.Diskcache.open_store root in
    for _ = 1 to 50 do
      C.Diskcache.put d key body;
      (* put skips existing entries; delete occasionally so renames
         genuinely race *)
      (try Sys.remove (C.Diskcache.entry_path d key)
       with Sys_error _ -> ())
    done;
    C.Diskcache.put d key body
  in
  List.iter Domain.join
    (List.init 4 (fun _ -> Domain.spawn writer));
  let d = C.Diskcache.open_store root in
  Alcotest.(check (option string)) "entry whole after racing writers"
    (Some body) (C.Diskcache.get d key)

let test_gc_oldest_access_first () =
  let root = fresh_root () in
  let d = C.Diskcache.open_store ~max_bytes:2_500 root in
  let body = String.make 1_000 'u' in
  let k1 = Digest.string "one" and k2 = Digest.string "two" in
  let k3 = Digest.string "three" in
  C.Diskcache.put d k1 body;
  C.Diskcache.put d k2 body;
  (* back-date the access stamps so eviction order is forced: k1 is
     oldest, k2 next, and the entry written below is freshest *)
  Unix.utimes (C.Diskcache.entry_path d k1) 1000. 1000.;
  Unix.utimes (C.Diskcache.entry_path d k2) 2000. 2000.;
  C.Diskcache.put d k3 body;
  (* 3 × ~1k bodies over a 2.5k bound: the put's sweep must evict
     exactly the oldest-accessed entry *)
  Alcotest.(check bool) "oldest-accessed entry evicted" false
    (Sys.file_exists (C.Diskcache.entry_path d k1));
  Alcotest.(check bool) "younger entry kept" true
    (Sys.file_exists (C.Diskcache.entry_path d k2));
  Alcotest.(check bool) "freshest entry kept" true
    (Sys.file_exists (C.Diskcache.entry_path d k3));
  Alcotest.(check bool) "eviction counted" true
    ((C.Diskcache.stats d).C.Diskcache.d_evictions >= 1)

(* ---------------------------------------------------------------- *)
(* Peer tier fallback                                                *)

let test_peer_down_fallback () =
  (* A handler whose only peer never answers must compile everything
     locally — same result, failures counted, nothing raised. *)
  let before = Telemetry.snapshot () in
  let handler =
    Fg_server.Handler.create
      ~peers:[ ("dead", `Unix "/tmp/no-such-fgc-peer.sock") ]
      ()
  in
  let status, payload =
    Fg_server.Handler.handle_safe handler
      (Fg_server.Protocol.request ~id:1 ~file:"<t>" ~source:program
         ~prelude:true Fg_server.Protocol.Run)
  in
  Alcotest.(check string) "request served despite dead peer" "ok"
    (Fg_server.Protocol.status_name status);
  (match Json.of_string payload with
  | Ok j ->
      Alcotest.(check (option bool)) "payload ok" (Some true)
        (Json.bool_field "ok" j)
  | Error e -> Alcotest.fail e);
  let d = Telemetry.diff (Telemetry.snapshot ()) before in
  Alcotest.(check bool) "peer failures recorded" true
    (d.Telemetry.peer_failures > 0)

let suite =
  [
    Alcotest.test_case "blob framing round-trips and rejects" `Quick
      test_blob_roundtrip;
    Alcotest.test_case "get/put and corrupt-entry handling" `Quick
      test_get_put;
    Alcotest.test_case "cold and warm runs byte-identical" `Quick
      test_cold_warm_byte_identity;
    Alcotest.test_case "garbage in the store never breaks compilation"
      `Quick test_garbage_in_store;
    Alcotest.test_case "concurrent writers, one whole entry" `Quick
      test_concurrent_writers;
    Alcotest.test_case "GC evicts oldest access first" `Quick
      test_gc_oldest_access_first;
    Alcotest.test_case "dead cache peer degrades silently" `Quick
      test_peer_down_fallback;
  ]
