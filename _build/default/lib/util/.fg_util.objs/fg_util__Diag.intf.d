lib/util/diag.mli: Fmt Format Loc
