(** Bounded request queue + worker-domain pool (see the interface).

    Concurrency structure:

    - the queue is a [Queue.t] guarded by one mutex with two condition
      variables ([not_empty] for workers, [not_full] for the blocking
      enqueue used by shutdown sentinels);
    - workers are OCaml 5 domains; each owns a {!Handler.t} (and so its
      own warm sessions — checker state never crosses domains);
    - metrics are per-domain sharded counters ({!Shardcounter.t},
      merged on read) and {!Telemetry.Histogram}s, safe to bump from
      any domain and to read from any thread;
    - backpressure is explicit: {!try_enqueue} never blocks and never
      buffers beyond [capacity] — a full queue is the caller's signal
      to send an overload response. *)

open Fg_util

(* The shared monotonized clock: durations measured against it are
   never negative even if wall time steps backwards. *)
let now_ns = Telemetry.now_ns

(* ---------------------------------------------------------------- *)
(* Metrics                                                           *)

let n_kinds = List.length Protocol.all_kinds
let kind_index k = Option.get (List.find_index (( = ) k) Protocol.all_kinds)

let all_statuses =
  Protocol.
    [ Ok_; Failed; Timeout; Overload; Shutting_down; Protocol_error ]

let n_statuses = List.length all_statuses
let status_index s = Option.get (List.find_index (( = ) s) all_statuses)

let backend_index b =
  Option.get (List.find_index (( = ) b) Fg_core.Backend.all)

type metrics = {
  started_ns : int;
  by_kind_status : Shardcounter.t array;  (** [n_kinds * n_statuses] grid *)
  by_backend : Shardcounter.t array;
      (** requests served per translation backend, {!Fg_core.Backend.all}
          order *)
  queue_depth : Shardcounter.t;
  enqueued : Shardcounter.t;
  protocol_errors : Shardcounter.t;
  connections_opened : Shardcounter.t;
  latency : Telemetry.Histogram.t;  (** enqueue → response ready, ns *)
  queue_wait : Telemetry.Histogram.t;  (** enqueue → dequeue, ns *)
}

let metrics () =
  {
    started_ns = now_ns ();
    by_kind_status =
      Array.init (n_kinds * n_statuses) (fun _ -> Shardcounter.create ());
    by_backend =
      Array.init
        (List.length Fg_core.Backend.all)
        (fun _ -> Shardcounter.create ());
    queue_depth = Shardcounter.create ();
    enqueued = Shardcounter.create ();
    protocol_errors = Shardcounter.create ();
    connections_opened = Shardcounter.create ();
    latency = Telemetry.Histogram.create ();
    queue_wait = Telemetry.Histogram.create ();
  }

let record_outcome m kind status =
  Shardcounter.incr
    m.by_kind_status.((kind_index kind * n_statuses) + status_index status)

let record_backend m b = Shardcounter.incr m.by_backend.(backend_index b)
let record_protocol_error m = Shardcounter.incr m.protocol_errors
let record_connection m = Shardcounter.incr m.connections_opened

let metrics_to_json ?(extra = []) m =
  let requests =
    List.map
      (fun k ->
        let counts =
          List.filter_map
            (fun s ->
              let n =
                Shardcounter.read
                  m.by_kind_status.((kind_index k * n_statuses)
                                    + status_index s)
              in
              if n = 0 then None
              else Some (Protocol.status_name s, Json.Int n))
            all_statuses
        in
        (Protocol.kind_name k, Json.Obj counts))
      Protocol.all_kinds
  in
  Json.Obj
    ([
       ("uptime_ms", Json.Int ((now_ns () - m.started_ns) / 1_000_000));
       ("enqueued", Json.Int (Shardcounter.read m.enqueued));
       ("queue_depth", Json.Int (Shardcounter.read m.queue_depth));
       ("protocol_errors", Json.Int (Shardcounter.read m.protocol_errors));
       ( "connections_opened",
         Json.Int (Shardcounter.read m.connections_opened) );
       ("requests", Json.Obj requests);
       ( "backends",
         Json.Obj
           (List.map
              (fun b ->
                ( Fg_core.Backend.to_string b,
                  Json.Int (Shardcounter.read m.by_backend.(backend_index b))
                ))
              Fg_core.Backend.all) );
       ("latency", Telemetry.Histogram.to_json m.latency);
       ("queue_wait", Telemetry.Histogram.to_json m.queue_wait);
     ]
    @ extra)

(* ---------------------------------------------------------------- *)
(* The pool                                                          *)

type job = {
  req : Protocol.request;
  enqueued_ns : int;
  deadline_ns : int option;
  respond : Protocol.response -> unit;
}

type t = {
  capacity : int;
  fuel : int option;
  disk : Fg_core.Diskcache.t option;
      (** the daemon's shared on-disk unit store, one per server *)
  peers : (string * Protocol.address) list;  (** the cache peer tier *)
  unit_cache_capacity : int option;
      (** per-worker unit-cache bound (auto-sized by the server) *)
  profile : Profile.t option;  (** the daemon's default workload profile *)
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  queue : job Queue.t;
  mutable stopping : bool;  (** guarded by [m] *)
  mutable workers : unit Domain.t list;
  mutable handlers : Handler.t list;
      (** one per worker, registered at worker startup (guarded by [m]);
          read by the stats payload for per-worker unit-cache counters *)
  metrics : metrics;
  stats_json : unit -> Json.t;
      (** the [stats] payload; the server closes over its own config *)
}

let create ?fuel ?disk ?(peers = []) ?unit_cache_capacity ?profile ~capacity
    ~stats_json () =
  let metrics = metrics () in
  {
    capacity = max 1 capacity;
    fuel;
    disk;
    peers;
    unit_cache_capacity;
    profile;
    m = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    queue = Queue.create ();
    stopping = false;
    workers = [];
    handlers = [];
    metrics;
    stats_json = (fun () -> stats_json metrics);
  }

let metrics t = t.metrics

(* Per-worker unit-cache counters plus their totals.  The handler list
   is read under the pool mutex; the counters themselves are atomics,
   so reading them from whichever worker serves the stats request is
   safe while other workers keep checking. *)
let unit_cache_json t =
  Mutex.lock t.m;
  let handlers = List.rev t.handlers in
  Mutex.unlock t.m;
  let stats = List.map Handler.cache_stats handlers in
  let obj (s : Fg_core.Unit.stats) =
    Json.Obj
      [
        ("hits", Json.Int s.Fg_core.Unit.s_hits);
        ("misses", Json.Int s.Fg_core.Unit.s_misses);
        ("evictions", Json.Int s.Fg_core.Unit.s_evictions);
        ("invalidations", Json.Int s.Fg_core.Unit.s_invalidations);
        ("size", Json.Int s.Fg_core.Unit.s_size);
        ("capacity", Json.Int s.Fg_core.Unit.s_capacity);
      ]
  in
  let total f = List.fold_left (fun acc s -> acc + f s) 0 stats in
  Json.Obj
    [
      ("workers", Json.List (List.map obj stats));
      ( "totals",
        Json.Obj
          [
            ("hits", Json.Int (total (fun s -> s.Fg_core.Unit.s_hits)));
            ("misses", Json.Int (total (fun s -> s.Fg_core.Unit.s_misses)));
            ( "evictions",
              Json.Int (total (fun s -> s.Fg_core.Unit.s_evictions)) );
            ( "invalidations",
              Json.Int (total (fun s -> s.Fg_core.Unit.s_invalidations)) );
            ("size", Json.Int (total (fun s -> s.Fg_core.Unit.s_size)));
          ] );
    ]

let stats_payload t =
  let base = t.stats_json () in
  let json =
    match base with
    | Json.Obj fields -> Json.Obj (fields @ [ ("unit_cache", unit_cache_json t) ])
    | j -> j
  in
  (* sort_keys: the stats payload is byte-stable modulo counter values,
     so two fleets serving the same workload diff cleanly *)
  Json.to_string (Json.sort_keys json)

(* ---------------------------------------------------------------- *)
(* Profile material: the positive-count maps and summed cache
   counters the server folds into a workload profile at drain. *)

let backend_mix t =
  List.filter_map
    (fun b ->
      let n = Shardcounter.read t.metrics.by_backend.(backend_index b) in
      if n > 0 then Some (Fg_core.Backend.to_string b, n) else None)
    Fg_core.Backend.all

let request_mix t =
  List.filter_map
    (fun k ->
      let n =
        List.fold_left
          (fun acc s ->
            acc
            + Shardcounter.read
                t.metrics.by_kind_status.((kind_index k * n_statuses)
                                          + status_index s))
          0 all_statuses
      in
      if n > 0 then Some (Protocol.kind_name k, n) else None)
    Protocol.all_kinds

let unit_cache_totals t =
  Mutex.lock t.m;
  let handlers = t.handlers in
  Mutex.unlock t.m;
  let stats = List.map Handler.cache_stats handlers in
  List.fold_left
    (fun (acc : Fg_core.Unit.stats) (s : Fg_core.Unit.stats) ->
      {
        Fg_core.Unit.s_hits = acc.Fg_core.Unit.s_hits + s.Fg_core.Unit.s_hits;
        s_misses = acc.Fg_core.Unit.s_misses + s.Fg_core.Unit.s_misses;
        s_evictions =
          acc.Fg_core.Unit.s_evictions + s.Fg_core.Unit.s_evictions;
        s_invalidations =
          acc.Fg_core.Unit.s_invalidations + s.Fg_core.Unit.s_invalidations;
        s_size = acc.Fg_core.Unit.s_size + s.Fg_core.Unit.s_size;
        s_capacity =
          max acc.Fg_core.Unit.s_capacity s.Fg_core.Unit.s_capacity;
      })
    {
      Fg_core.Unit.s_hits = 0;
      s_misses = 0;
      s_evictions = 0;
      s_invalidations = 0;
      s_size = 0;
      s_capacity = 0;
    }
    stats

let stopping t =
  Mutex.lock t.m;
  let s = t.stopping in
  Mutex.unlock t.m;
  s

(* Begin the drain: no new work is admitted, workers finish what is
   queued and exit.  Idempotent; callable from any thread or domain. *)
let initiate_stop t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.m

(* ---------------------------------------------------------------- *)
(* Worker side                                                       *)

let timeout_response (job : job) ~elapsed_ms =
  {
    Protocol.r_id = job.req.Protocol.id;
    r_status = Protocol.Timeout;
    r_payload =
      Protocol.error_payload ~file:job.req.Protocol.file ~code:"FG0801"
        "request exceeded its deadline (%dms elapsed, limit %dms)"
        elapsed_ms
        (Option.value ~default:0 job.req.Protocol.timeout_ms);
  }

let past_deadline (job : job) now =
  match job.deadline_ns with Some d -> now > d | None -> false

let process t handler (job : job) =
  let start = now_ns () in
  Telemetry.Histogram.observe t.metrics.queue_wait
    (start - job.enqueued_ns);
  let resp =
    if past_deadline job start then
      (* Expired while queued: reject without running. *)
      timeout_response job
        ~elapsed_ms:((start - job.enqueued_ns) / 1_000_000)
    else
      match job.req.Protocol.kind with
      | Protocol.Stats ->
          { Protocol.r_id = job.req.Protocol.id; r_status = Protocol.Ok_;
            r_payload = stats_payload t }
      | Protocol.Shutdown ->
          (* Graceful drain: everything enqueued before this sentinel
             has already been served (FIFO); flip the flag so nothing
             new is admitted, then acknowledge. *)
          initiate_stop t;
          { Protocol.r_id = job.req.Protocol.id; r_status = Protocol.Ok_;
            r_payload =
              Json.to_string
                (Json.Obj
                   [ ("ok", Json.Bool true);
                     ("draining", Json.Bool true) ]) }
      | _ ->
          let status, payload = Handler.handle_safe handler job.req in
          let finished = now_ns () in
          if past_deadline job finished then
            (* The work completed but its deadline had already passed:
               honor the contract and report a timeout (the result is
               discarded, exactly like a caller that stopped
               waiting). *)
            timeout_response job
              ~elapsed_ms:((finished - job.enqueued_ns) / 1_000_000)
          else
            { Protocol.r_id = job.req.Protocol.id; r_status = status;
              r_payload = payload }
  in
  let done_ns = now_ns () in
  Telemetry.Histogram.observe t.metrics.latency (done_ns - job.enqueued_ns);
  record_outcome t.metrics job.req.Protocol.kind resp.Protocol.r_status;
  record_backend t.metrics job.req.Protocol.backend;
  job.respond resp

let worker_loop t =
  let handler =
    Handler.create ?fuel:t.fuel ?disk:t.disk ~peers:t.peers
      ?unit_cache_capacity:t.unit_cache_capacity ?profile:t.profile ()
  in
  Mutex.lock t.m;
  t.handlers <- handler :: t.handlers;
  Mutex.unlock t.m;
  Handler.warm handler;
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.not_empty t.m
    done;
    if Queue.is_empty t.queue then (* stopping && drained *)
      Mutex.unlock t.m
    else begin
      let job = Queue.pop t.queue in
      Shardcounter.decr t.metrics.queue_depth;
      Condition.signal t.not_full;
      Mutex.unlock t.m;
      process t handler job;
      loop ()
    end
  in
  loop ()

let start ~workers t =
  t.workers <-
    List.init (max 1 workers) (fun _ -> Domain.spawn (fun () -> worker_loop t))

(* Wait for the drain to finish: workers exit once [stopping] is set
   and the queue is empty. *)
let join t = List.iter Domain.join t.workers

(* ---------------------------------------------------------------- *)
(* Submission side                                                   *)

let try_enqueue t job =
  Mutex.lock t.m;
  let verdict =
    if t.stopping then `Shutting_down
    else if Queue.length t.queue >= t.capacity then `Overload
    else begin
      Queue.push job t.queue;
      Shardcounter.incr t.metrics.queue_depth;
      Shardcounter.incr t.metrics.enqueued;
      Condition.signal t.not_empty;
      `Ok
    end
  in
  Mutex.unlock t.m;
  verdict

let enqueue_wait t job =
  Mutex.lock t.m;
  let rec wait () =
    if t.stopping then false
    else if Queue.length t.queue >= t.capacity then begin
      Condition.wait t.not_full t.m;
      wait ()
    end
    else begin
      Queue.push job t.queue;
      Shardcounter.incr t.metrics.queue_depth;
      Shardcounter.incr t.metrics.enqueued;
      Condition.signal t.not_empty;
      true
    end
  in
  let admitted = wait () in
  Mutex.unlock t.m;
  admitted
