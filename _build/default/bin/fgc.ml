(* fgc: the System FG command-line driver.

   Subcommands:
     check      type check a program, print its FG type
     translate  print the System F translation (optionally its type)
     run        run the full pipeline and print the value
     verify     check the translation-preserves-typing theorem
     corpus     list or run the built-in paper corpus
     eq         decide a same-type query under assumptions

   Programs are read from a file argument or from stdin ("-"). *)

open Cmdliner
module C = Fg_core
module F = Fg_systemf

let read_input = function
  | "-" ->
      let b = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel b stdin 4096
         done
       with End_of_file -> ());
      ("<stdin>", Buffer.contents b)
  | path ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      (path, s)

let handle f =
  try
    f ();
    0
  with Fg_util.Diag.Error d ->
    Fmt.epr "%a@." Fg_util.Diag.pp d;
    1

(* ---------------------------------------------------------------- *)
(* Common arguments                                                  *)

let expr_arg =
  let doc = "Give the program inline instead of reading a file." in
  Arg.(value & opt (some string) None & info [ "e"; "expr" ] ~docv:"SRC" ~doc)

let global_flag =
  let doc =
    "Use global (Haskell-style) model resolution: overlapping models \
     anywhere in the program are rejected.  The default is the paper's \
     lexically scoped resolution."
  in
  Arg.(value & flag & info [ "global-models" ] ~doc)

let resolution_of_flag g =
  if g then C.Resolution.Global else C.Resolution.Lexical

let with_prelude_flag =
  let doc = "Wrap the program in the standard prelude (concepts, models \
             for int/bool/list int, and the generic algorithms)." in
  Arg.(value & flag & info [ "p"; "prelude" ] ~doc)

let get_source file expr with_prelude =
  let name, src =
    match expr with Some s -> ("<expr>", s) | None -> read_input file
  in
  (name, if with_prelude then C.Prelude.wrap src else src)

(* ---------------------------------------------------------------- *)
(* check                                                             *)

let check_cmd =
  let run file expr global with_prelude =
    handle (fun () ->
        let name, src = get_source file expr with_prelude in
        let ty =
          C.Pipeline.typecheck ~file:name
            ~resolution:(resolution_of_flag global) src
        in
        Fmt.pr "%a@." C.Pretty.pp_ty ty)
  in
  let file =
    Arg.(value & pos 0 string "-" & info [] ~docv:"FILE"
           ~doc:"Input program file ('-' for stdin).")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Type check an FG program and print its type")
    Term.(const run $ file $ expr_arg $ global_flag $ with_prelude_flag)

(* ---------------------------------------------------------------- *)
(* translate                                                         *)

let translate_cmd =
  let run file expr global with_prelude show_type =
    handle (fun () ->
        let name, src = get_source file expr with_prelude in
        let f =
          C.Pipeline.translate ~file:name
            ~resolution:(resolution_of_flag global) src
        in
        Fmt.pr "%a@." F.Pretty.pp_exp f;
        if show_type then
          Fmt.pr "// : %a@." F.Pretty.pp_ty (F.Typecheck.typecheck f))
  in
  let file =
    Arg.(value & pos 0 string "-" & info [] ~docv:"FILE"
           ~doc:"Input program file ('-' for stdin).")
  in
  let show_type =
    Arg.(value & flag
         & info [ "t"; "type" ] ~doc:"Also print the System F type.")
  in
  Cmd.v
    (Cmd.info "translate"
       ~doc:"Translate an FG program to System F (dictionary passing)")
    Term.(
      const run $ file $ expr_arg $ global_flag $ with_prelude_flag
      $ show_type)

(* ---------------------------------------------------------------- *)
(* run                                                               *)

let run_cmd =
  let run file expr global with_prelude verbose =
    handle (fun () ->
        let name, src = get_source file expr with_prelude in
        let out =
          C.Pipeline.run ~file:name ~resolution:(resolution_of_flag global)
            src
        in
        if verbose then begin
          Fmt.pr "type        : %a@." C.Pretty.pp_ty out.fg_ty;
          Fmt.pr "value       : %a@." C.Interp.pp_flat out.value;
          Fmt.pr "direct steps: %d@." out.direct_steps;
          Fmt.pr "trans steps : %d@." out.translated_steps;
          Fmt.pr "theorem     : %s@."
            (if out.theorem_holds then "holds" else "VIOLATED")
        end
        else Fmt.pr "%a@." C.Interp.pp_flat out.value)
  in
  let file =
    Arg.(value & pos 0 string "-" & info [] ~docv:"FILE"
           ~doc:"Input program file ('-' for stdin).")
  in
  let verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ]
             ~doc:"Print the type, step counts and theorem status too.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the full pipeline: check, translate, verify the theorem, \
          evaluate both directly and via the translation, and print the \
          (agreeing) value")
    Term.(
      const run $ file $ expr_arg $ global_flag $ with_prelude_flag $ verbose)

(* ---------------------------------------------------------------- *)
(* elaborate                                                         *)

let elaborate_cmd =
  let run file expr global with_prelude =
    handle (fun () ->
        let name, src = get_source file expr with_prelude in
        let ast = C.Parser.exp_of_string ~file:name src in
        let _, elaborated, _ =
          C.Check.elaborate ~resolution:(resolution_of_flag global) ast
        in
        Fmt.pr "%a@." C.Pretty.pp_exp elaborated)
  in
  let file =
    Arg.(value & pos 0 string "-" & info [] ~docv:"FILE"
           ~doc:"Input program file ('-' for stdin).")
  in
  Cmd.v
    (Cmd.info "elaborate"
       ~doc:
         "Print the elaborated FG program (implicit instantiations made \
          explicit, member defaults filled in)")
    Term.(const run $ file $ expr_arg $ global_flag $ with_prelude_flag)

(* ---------------------------------------------------------------- *)
(* verify                                                            *)

let verify_cmd =
  let run file expr global with_prelude =
    handle (fun () ->
        let name, src = get_source file expr with_prelude in
        let ast = C.Parser.exp_of_string ~file:name src in
        let report =
          C.Theorems.check_translation
            ~resolution:(resolution_of_flag global) ast
        in
        Fmt.pr "FG type          : %a@." C.Pretty.pp_ty report.fg_ty;
        Fmt.pr "translated type  : %a@." F.Pretty.pp_ty report.expected_f_ty;
        Fmt.pr "System F assigns : %a@." F.Pretty.pp_ty report.f_ty;
        Fmt.pr "theorem          : holds@.")
  in
  let file =
    Arg.(value & pos 0 string "-" & info [] ~docv:"FILE"
           ~doc:"Input program file ('-' for stdin).")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check the paper's Theorems 1/2 on this program: the translation \
          type checks in System F at the translated type")
    Term.(const run $ file $ expr_arg $ global_flag $ with_prelude_flag)

(* ---------------------------------------------------------------- *)
(* corpus                                                            *)

let corpus_cmd =
  let run name_opt =
    handle (fun () ->
        match name_opt with
        | None ->
            List.iter
              (fun (e : C.Corpus.entry) ->
                Fmt.pr "%-30s %-18s %s@." e.name e.paper e.description)
              C.Corpus.all
        | Some name -> (
            let e = C.Corpus.find name in
            Fmt.pr "// %s (%s)@.%s@.@." e.description e.paper e.source;
            match e.expected with
            | C.Corpus.Value expect ->
                let out = C.Pipeline.run ~file:e.name e.source in
                Fmt.pr "value: %a (expected %a)@." C.Interp.pp_flat out.value
                  C.Interp.pp_flat expect
            | C.Corpus.Fails phase -> (
                match C.Pipeline.run_result ~file:e.name e.source with
                | Error d ->
                    Fmt.pr "rejected as expected (%s): %s@."
                      (Fg_util.Diag.phase_name phase)
                      (Fg_util.Diag.to_string d)
                | Ok _ -> failwith "expected failure but program succeeded")))
  in
  let entry_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"NAME"
             ~doc:"Corpus entry to show and run (omit to list).")
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:"List or run the built-in corpus of paper example programs")
    Term.(const run $ entry_arg)

(* ---------------------------------------------------------------- *)
(* eq: same-type queries                                             *)

let eq_cmd =
  let run assumptions query =
    handle (fun () ->
        let eq =
          List.fold_left
            (fun eq src ->
              match C.Parser.constr_of_string src with
              | C.Ast.CSame (a, b) -> C.Equality.assume eq a b
              | C.Ast.CModel _ ->
                  failwith "assumptions must be same-type constraints (a == b)")
            C.Equality.empty assumptions
        in
        match C.Parser.constr_of_string query with
        | C.Ast.CSame (a, b) ->
            Fmt.pr "%b@." (C.Equality.equal eq a b);
            Fmt.pr "repr lhs: %a@." C.Pretty.pp_ty (C.Equality.repr eq a);
            Fmt.pr "repr rhs: %a@." C.Pretty.pp_ty (C.Equality.repr eq b)
        | C.Ast.CModel _ -> failwith "query must be a same-type constraint")
  in
  let assumptions =
    Arg.(value & opt_all string []
         & info [ "a"; "assume" ] ~docv:"EQ"
             ~doc:"Assumed equality, e.g. 'C<int>.elt == int' (repeatable).")
  in
  let query =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"QUERY" ~doc:"Query equality, e.g. 'a == b'.")
  in
  Cmd.v
    (Cmd.info "eq"
       ~doc:
         "Decide a same-type query under assumptions (congruence closure), \
          printing the verdict and both representatives")
    Term.(const run $ assumptions $ query)

(* ---------------------------------------------------------------- *)
(* repl                                                              *)

let repl_cmd =
  let run () = handle (fun () -> Repl.main ()) in
  Cmd.v
    (Cmd.info "repl"
       ~doc:
         "Interactive session: declarations accumulate, expressions run \
          through the full pipeline")
    Term.(const run $ const ())

(* ---------------------------------------------------------------- *)

let () =
  let doc =
    "System FG: concepts, models, where clauses, associated types and \
     same-type constraints (PLDI 2005 reproduction)"
  in
  let info = Cmd.info "fgc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            check_cmd; translate_cmd; run_cmd; verify_cmd; elaborate_cmd;
            corpus_cmd; eq_cmd; repl_cmd;
          ]))
