(** A persistent, content-addressed store for compilation-unit blobs:
    the disk tier of the unit cache ([--cache-dir]).

    {b Layout.}  Under the store root, entries fan out into 256 shard
    directories named by the first two hex characters of the key; an
    entry file is the full lowercase hex of its key.  Writes go to a
    temp file in the root followed by an atomic [rename], so concurrent
    writers (parallel batch domains, several server workers, even
    separate processes sharing one root) can never produce a torn
    entry — the last rename wins and every reader sees either a whole
    blob or none.

    {b Validation.}  Every blob is stamped with the store format
    version, [Sys.ocaml_version], and a digest of the running compiler
    binary, followed by an MD5 of the body.  Unit keys (and the
    marshalled closures behind them) are only stable within one
    compiler build, so entries written by any other build — or
    truncated or corrupted by the filesystem — fail validation and are
    {e deleted and treated as a miss, never a crash}.

    {b GC.}  When [max_bytes] is set, the store evicts
    oldest-accessed-first (reads refresh an entry's timestamp) until it
    is back under the bound.  Sizes are tracked approximately per
    process; the sweep itself re-scans the tree, so cohabiting
    processes converge.

    All counters are atomics; one [t] may be shared across domains. *)

type t

(** Bump when the blob layout changes: entries from other format
    versions fail validation. *)
val format_version : int

(** [open_store ?max_bytes root] creates [root] (and parents) if
    needed.  Raises the FG1002 configuration diagnostic when [root]
    cannot be created or is not a directory. *)
val open_store : ?max_bytes:int -> string -> t

val root : t -> string

(** [get t key] — the validated body stored under [key], or [None].
    A hit refreshes the entry's access time.  Invalid entries count as
    corrupt, are unlinked, and read as a miss. *)
val get : t -> string -> string option

(** [put t key body] — persist [body] under [key] (temp file + atomic
    rename; a pre-existing entry is left alone).  Failures degrade
    silently: a full or read-only disk must not break compilation.
    Triggers a GC sweep when the store exceeds [max_bytes]. *)
val put : t -> string -> string -> unit

(** Evict oldest-accessed entries until the store fits [max_bytes]
    (no-op bound-wise when unbounded; always re-syncs the size
    accounting with the filesystem). *)
val gc : t -> unit

(** Where [key]'s entry lives — tests use this to corrupt entries and
    to back-date access times. *)
val entry_path : t -> string -> string

(** [encode_blob body] / [decode_blob s] — the stamped on-disk framing
    ([decode_blob] returns [None] unless the stamp matches this build
    and the body digest checks out).  Exposed for the peer tier and
    tests. *)
val encode_blob : string -> string

val decode_blob : string -> string option

type stats = {
  d_hits : int;
  d_misses : int;
  d_evictions : int;
  d_corrupt : int;
  d_entries : int;  (** entries this process believes are on disk *)
  d_bytes : int;  (** approximate store size in bytes *)
}

(** Counter snapshot; safe from any domain. *)
val stats : t -> stats
