(* End-to-end tests of the fgc command-line tool: each subcommand run
   as a subprocess against the real binary. *)

let fgc = "../bin/fgc.exe"

let run_cmd args ~stdin_text =
  let out_file = Filename.temp_file "fgc_out" ".txt" in
  let in_file = Filename.temp_file "fgc_in" ".txt" in
  let oc = open_out in_file in
  output_string oc stdin_text;
  close_out oc;
  let cmd =
    Printf.sprintf "%s %s < %s > %s 2>&1" (Filename.quote fgc) args
      (Filename.quote in_file) (Filename.quote out_file)
  in
  let code = Sys.command cmd in
  let ic = open_in out_file in
  let n = in_channel_length ic in
  let out = really_input_string ic n in
  close_in ic;
  Sys.remove out_file;
  Sys.remove in_file;
  (code, String.trim out)

let check_out args expected =
  let code, out = run_cmd args ~stdin_text:"" in
  Alcotest.(check int) (args ^ " exit code") 0 code;
  Alcotest.(check string) args expected out

let test_run () =
  check_out "run -e '1 + 2 * 3'" "7";
  check_out "run -p -e 'accumulate(cons[int](20, cons[int](22, nil[int])))'"
    "42"

let test_run_verbose () =
  let code, out = run_cmd "run -e '(1, true)' -v" ~stdin_text:"" in
  Alcotest.(check int) "exit" 0 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Astring_contains.contains ~needle out))
    [ "type        : int * bool"; "value       : (1, true)"; "theorem     : holds" ]

let test_check () =
  check_out "check -e 'fun (x : int) => x'" "fn(int) -> int"

let test_translate () =
  let code, out =
    run_cmd
      "translate -e 'concept N<t> { m : t; } in model N<int> { m = 9; } in \
       N<int>.m' -t"
      ~stdin_text:""
  in
  Alcotest.(check int) "exit" 0 code;
  Alcotest.(check bool) "dictionary" true
    (Astring_contains.contains ~needle:"tuple(9)" out);
  Alcotest.(check bool) "type comment" true
    (Astring_contains.contains ~needle:"// : int" out)

let test_verify () =
  let code, out = run_cmd "verify -e '41 + 1'" ~stdin_text:"" in
  Alcotest.(check int) "exit" 0 code;
  Alcotest.(check bool) "holds" true
    (Astring_contains.contains ~needle:"theorem          : holds" out)

let test_elaborate () =
  let code, out =
    run_cmd "elaborate -p -e 'contains(cons[int](1, nil[int]), 1)'"
      ~stdin_text:""
  in
  Alcotest.(check int) "exit" 0 code;
  Alcotest.(check bool) "explicit instantiation inserted" true
    (Astring_contains.contains ~needle:"contains[list int](" out)

let test_error_exit_code () =
  let code, out = run_cmd "run -e '1 + true'" ~stdin_text:"" in
  Alcotest.(check int) "nonzero exit" 1 code;
  Alcotest.(check bool) "message" true
    (Astring_contains.contains ~needle:"expected int but got bool" out)

let test_global_flag () =
  let overlapping =
    "'concept C<t> { v : t; } in let a = model C<int> { v = 1; } in C<int>.v \
     in let b = model C<int> { v = 2; } in C<int>.v in a + b'"
  in
  let code, _ = run_cmd ("run -e " ^ overlapping) ~stdin_text:"" in
  Alcotest.(check int) "lexical accepts" 0 code;
  let code2, out2 =
    run_cmd ("run --global-models -e " ^ overlapping) ~stdin_text:""
  in
  Alcotest.(check int) "global rejects" 1 code2;
  Alcotest.(check bool) "overlap diagnostic" true
    (Astring_contains.contains ~needle:"overlapping model" out2)

let test_corpus_listing () =
  let code, out = run_cmd "corpus" ~stdin_text:"" in
  Alcotest.(check int) "exit" 0 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Astring_contains.contains ~needle out))
    [ "fig5_accumulate"; "fig6_overlap"; "merge_example"; "named_models" ]

let test_corpus_run () =
  let code, out = run_cmd "corpus fig6_overlap" ~stdin_text:"" in
  Alcotest.(check int) "exit" 0 code;
  Alcotest.(check bool) "value" true
    (Astring_contains.contains ~needle:"value: (3, 2) (expected (3, 2))" out)

let test_eq () =
  let code, out =
    run_cmd "eq -a 'C<int>.elt == int' 'list C<int>.elt == list int'"
      ~stdin_text:""
  in
  Alcotest.(check int) "exit" 0 code;
  Alcotest.(check bool) "true verdict" true
    (Astring_contains.contains ~needle:"true" out);
  Alcotest.(check bool) "repr" true
    (Astring_contains.contains ~needle:"repr lhs: list int" out)

let test_stdin_input () =
  let code, out = run_cmd "run" ~stdin_text:"let x = 6 in x * 7" in
  Alcotest.(check int) "exit" 0 code;
  Alcotest.(check string) "stdin program" "42" out

let test_run_json () =
  let code, out =
    run_cmd "run --format=json -p -e 'power[int](2, 5)'" ~stdin_text:""
  in
  Alcotest.(check int) "exit" 0 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Astring_contains.contains ~needle out))
    [ {|"ok": true|}; {|"type": "int"|}; {|"value": 10|};
      {|"theorem": true|}; {|"direct_steps"|} ]

let test_json_error () =
  let code, out = run_cmd "run --format=json -e '1 + true'" ~stdin_text:"" in
  Alcotest.(check int) "nonzero exit" 1 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Astring_contains.contains ~needle out))
    [ {|"ok": false|}; {|"phase": "type error"|}; {|"line": 1|};
      "expected int but got bool" ]

let test_multi_error () =
  (* one invocation reports every independent error, with codes *)
  let src =
    "'concept N<t> { m : t; } in let c = fun (x : nope) => x in let d = 1 + \
     true in N<int>.m'"
  in
  let code, out = run_cmd ("run -e " ^ src) ~stdin_text:"" in
  Alcotest.(check int) "nonzero exit" 1 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Astring_contains.contains ~needle out))
    [ "FG0207"; "FG0303"; "FG0402"; "unbound type variable 'nope'";
      "expected int but got bool"; "no model of N<int>" ];
  let code_j, out_j =
    run_cmd ("run --format=json -e " ^ src) ~stdin_text:""
  in
  Alcotest.(check int) "json nonzero exit" 1 code_j;
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Astring_contains.contains ~needle out_j))
    [ {|"ok": false|}; {|"diagnostics"|}; {|"code": "FG0207"|};
      {|"code": "FG0303"|}; {|"code": "FG0402"|} ]

let test_verify_json () =
  let code, out = run_cmd "verify --format=json -e '41 + 1'" ~stdin_text:"" in
  Alcotest.(check int) "exit" 0 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Astring_contains.contains ~needle out))
    [ {|"theorem": true|}; {|"fg_type": "int"|}; {|"systemf_type": "int"|} ]

(* Golden test for the machine-readable diagnostics shape: the exact
   bytes a JSON consumer of `run --format=json` sees on a type error. *)
let test_json_diagnostics_golden () =
  let code, out =
    run_cmd "run --format=json -e '1 + true'" ~stdin_text:""
  in
  Alcotest.(check int) "nonzero exit" 1 code;
  Alcotest.(check string) "diagnostics array shape"
    ({|{"file": "<expr>", "ok": false, "diagnostics": [{"code": "FG0303", |}
    ^ {|"severity": "error", "phase": "type error", "message": |}
    ^ {|"argument: expected int but got bool", "span": {"file": "<expr>", |}
    ^ {|"start": {"line": 1, "col": 5}, "end": {"line": 1, "col": 9}}, |}
    ^ {|"notes": []}]}|})
    out

(* Golden test for the fuzz report shape, plus end-to-end determinism:
   the same seed must produce byte-identical reports, and a clean run
   must exit 0. *)
let test_fuzz_cli () =
  let code, out =
    run_cmd "fuzz --seed 42 --count 5 --format=json" ~stdin_text:""
  in
  Alcotest.(check int) "clean run exits 0" 0 code;
  Alcotest.(check string) "fuzz report shape"
    ({|{"fuzz": {"seed": 42, "count": 5, "size": 30, "mutants": 2}, |}
    ^ {|"generated": 5, "mutants_run": 10, "ok": true, "failures": []}|})
    out;
  let code2, out2 =
    run_cmd "fuzz --seed 42 --count 5 --format=json" ~stdin_text:""
  in
  Alcotest.(check int) "second run exits 0" 0 code2;
  Alcotest.(check string) "byte-identical across runs" out out2

let test_fuzz_cli_text () =
  let code, out =
    run_cmd "fuzz --seed 7 --count 3 --mutants 1" ~stdin_text:""
  in
  Alcotest.(check int) "exit" 0 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Astring_contains.contains ~needle out))
    [ "3 programs"; "3 mutants"; "ok" ]

let test_stats_flag () =
  let code, out =
    run_cmd "run --stats -p -e 'power[int](2, 5)'" ~stdin_text:""
  in
  Alcotest.(check int) "exit" 0 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Astring_contains.contains ~needle out))
    [ "10"; "phase wall time"; "prelude builds"; "model lookups" ]

let with_program_files bodies f =
  let files =
    List.map
      (fun body ->
        let path = Filename.temp_file "fgc_batch" ".fg" in
        let oc = open_out path in
        output_string oc body;
        close_out oc;
        path)
      bodies
  in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove files)
    (fun () -> f files)

let test_batch () =
  with_program_files
    [ "power[int](2, 3)"; "power[int](2, 4)"; "1 + true" ]
    (fun files ->
      let args =
        "batch -p --domains 2 "
        ^ String.concat " " (List.map Filename.quote files)
      in
      let code, out = run_cmd args ~stdin_text:"" in
      (* one program fails, so the batch exits non-zero but still
         reports every result, in argument order *)
      Alcotest.(check int) "exit" 1 code;
      List.iter
        (fun needle ->
          Alcotest.(check bool) needle true
            (Astring_contains.contains ~needle out))
        [ "6"; "8"; "ERROR"; "2/3 ok" ])

let test_batch_json () =
  with_program_files
    [ "power[int](2, 3)"; "power[int](2, 4)" ]
    (fun files ->
      let args =
        "batch -p --format=json "
        ^ String.concat " " (List.map Filename.quote files)
      in
      let code, out = run_cmd args ~stdin_text:"" in
      Alcotest.(check int) "exit" 0 code;
      List.iter
        (fun needle ->
          Alcotest.(check bool) needle true
            (Astring_contains.contains ~needle out))
        [ {|"value": 6|}; {|"value": 8|}; {|"ok": true|} ])

let test_corpus_all () =
  let code, out = run_cmd "corpus --all --domains 2" ~stdin_text:"" in
  Alcotest.(check int) "exit" 0 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Astring_contains.contains ~needle out))
    [ "fig5_accumulate"; "neg_param_diverging"; "/40 as expected" ]

let test_repl_session () =
  let session =
    ":prelude\n\
     accumulate(cons[int](1, cons[int](2, nil[int])))\n\
     concept Show<t> { sh : fn(t) -> int; }\n\
     model Show<bool> { sh = fun (b : bool) => if b then 1 else 0; }\n\
     Show<bool>.sh(true)\n\
     :type accumulate\n\
     :quit\n"
  in
  let code, out = run_cmd "repl" ~stdin_text:session in
  Alcotest.(check int) "exit" 0 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Astring_contains.contains ~needle out))
    [
      "- : int = 3";
      "defined.";
      "- : int = 1";
      "- : forall t where Monoid<t>. fn(list t) -> t";
    ]

(* `using` is a declaration: it must commit to the session (the named
   model becomes eligible for resolution), not be parsed as an
   expression. *)
let test_repl_using () =
  let session =
    "concept S<t> { op : fn(t, t) -> t; }\n\
     model addm = S<int> { op = iadd; }\n\
     using addm\n\
     S<int>.op(20, 22)\n\
     :quit\n"
  in
  let code, out = run_cmd "repl" ~stdin_text:session in
  Alcotest.(check int) "exit" 0 code;
  (* each prompt line echoes as "fg> defined." *)
  let defined_count =
    List.length
      (List.filter
         (fun l -> Astring_contains.contains ~needle:"defined." l)
         (String.split_on_char '\n' out))
  in
  Alcotest.(check int) "three declarations committed" 3 defined_count;
  Alcotest.(check bool) "resolves through using" true
    (Astring_contains.contains ~needle:"- : int = 42" out)

(* --backend: accepted by every driving subcommand, rejected with the
   stable FG1001 diagnostic (not a cmdliner usage error) everywhere. *)
let test_backend_flag () =
  let src =
    "'concept N<t> { m : fn(t, t) -> t; } in model N<int> { m = imult; } in \
     let sq = tfun t where N<t> => fun (x : t) => N<t>.m(x, x) in sq(4)'"
  in
  check_out ("run --backend=stencil -e " ^ src) "16";
  check_out ("run --backend=hybrid -e " ^ src) "16";
  let code, out =
    run_cmd ("run -v --backend=stencil -e " ^ src) ~stdin_text:""
  in
  Alcotest.(check int) "verbose exit" 0 code;
  Alcotest.(check bool) "verbose reports stencils" true
    (Astring_contains.contains ~needle:"1 stencils" out);
  let code, out =
    run_cmd ("run --format=json --backend=hybrid -e " ^ src) ~stdin_text:""
  in
  Alcotest.(check int) "json exit" 0 code;
  Alcotest.(check bool) "json backend field" true
    (Astring_contains.contains ~needle:"\"backend\": \"hybrid\"" out);
  List.iter
    (fun cmd ->
      let code, out =
        run_cmd (cmd ^ " --backend=jit -e '1 + 1'") ~stdin_text:""
      in
      Alcotest.(check bool) (cmd ^ " rejects with nonzero exit") true
        (code <> 0);
      Alcotest.(check bool) (cmd ^ " names FG1001") true
        (Astring_contains.contains ~needle:"FG1001" out))
    [ "run"; "check"; "translate" ];
  let code, out = run_cmd "fuzz --count 1 --backend=jit" ~stdin_text:"" in
  Alcotest.(check bool) "fuzz rejects" true (code <> 0);
  Alcotest.(check bool) "fuzz names FG1001" true
    (Astring_contains.contains ~needle:"FG1001" out)

let suite =
  [
    Alcotest.test_case "run" `Quick test_run;
    Alcotest.test_case "run --verbose" `Quick test_run_verbose;
    Alcotest.test_case "check" `Quick test_check;
    Alcotest.test_case "translate --type" `Quick test_translate;
    Alcotest.test_case "verify" `Quick test_verify;
    Alcotest.test_case "elaborate" `Quick test_elaborate;
    Alcotest.test_case "error exit code" `Quick test_error_exit_code;
    Alcotest.test_case "--global-models" `Quick test_global_flag;
    Alcotest.test_case "corpus listing" `Quick test_corpus_listing;
    Alcotest.test_case "corpus run" `Quick test_corpus_run;
    Alcotest.test_case "eq" `Quick test_eq;
    Alcotest.test_case "stdin input" `Quick test_stdin_input;
    Alcotest.test_case "run --format=json" `Quick test_run_json;
    Alcotest.test_case "json error shape" `Quick test_json_error;
    Alcotest.test_case "multi-error run" `Quick test_multi_error;
    Alcotest.test_case "verify --format=json" `Quick test_verify_json;
    Alcotest.test_case "json diagnostics golden" `Quick
      test_json_diagnostics_golden;
    Alcotest.test_case "fuzz --format=json golden" `Quick test_fuzz_cli;
    Alcotest.test_case "fuzz text summary" `Quick test_fuzz_cli_text;
    Alcotest.test_case "--stats" `Quick test_stats_flag;
    Alcotest.test_case "batch" `Quick test_batch;
    Alcotest.test_case "batch --format=json" `Quick test_batch_json;
    Alcotest.test_case "corpus --all" `Quick test_corpus_all;
    Alcotest.test_case "repl session" `Quick test_repl_session;
    Alcotest.test_case "repl using commits" `Quick test_repl_using;
    Alcotest.test_case "--backend flag" `Quick test_backend_flag;
  ]
