(** The [fgc serve] daemon: a Unix-socket or TCP accept loop feeding a
    bounded queue of requests served by worker domains with warm
    sessions.

    Production behaviors, all on by default:

    - {b backpressure}: the queue never grows past [max_queue]; a full
      queue yields an immediate [overload] response, never unbounded
      buffering;
    - {b deadlines}: [request_timeout_ms] (or the request's own
      ["timeout_ms"]) bounds queue wait + service; expired requests get
      a structured [timeout] response (code FG0801), and [fuel] bounds
      the evaluators so a divergent program cannot pin a worker;
    - {b graceful shutdown}: a [shutdown] request or {!signal_stop}
      stops admission, serves everything already accepted, closes
      connections, and joins every worker and reader — no leaks;
    - {b observability}: a [stats] request returns request counts by
      kind and status, queue depth, and p50/p95/p99 latency histograms
      ({!Fg_util.Telemetry.Histogram}). *)

type address = Protocol.address

type config = {
  address : address;
  workers : int;  (** worker domains, each with its own warm sessions *)
  max_queue : int;  (** bounded queue capacity *)
  request_timeout_ms : int option;  (** default per-request deadline *)
  max_frame : int;  (** largest accepted wire frame, bytes *)
  fuel : int option;  (** evaluator step bound per served run *)
  default_backend : Fg_core.Backend.t;
      (** backend for requests whose frame omits ["backend"]; an
          explicit request field always wins *)
  cache_dir : string option;
      (** root of the daemon's shared on-disk unit store
          ({!Fg_core.Diskcache}), consulted by every worker behind its
          memory cache and served to cache peers over [cache_get] /
          [cache_put]; [None] (the default) runs memory-only *)
  cache_max_bytes : int option;  (** disk-store size bound *)
  cache_peers : (string * address) list;
      (** other daemons whose stores form this daemon's peer tier:
          workers consult them over the wire on a disk miss and
          populate them on fresh checks.  [cache_get]/[cache_put]
          requests are answered directly in the reader thread (never
          queued behind compilation), so two daemons may peer at each
          other without deadlock. *)
  profile : Fg_util.Profile.t option;
      (** the daemon's default workload profile ([fgc serve
          --profile]): consulted by [guided]-backend sessions whose
          request ships no profile of its own, and by startup
          auto-sizing — profiled cache pressure picks the per-worker
          unit-cache capacity, profiled request volume shrinks an
          over-provisioned worker pool
          ({!Fg_util.Profile.auto_size}).  What changed is reported
          under ["auto_sizing"] in the [stats] payload. *)
  profile_out : string option;
      (** write the profile collected over this daemon's lifetime
          (instantiation/resolution counts, request and backend mixes,
          unit-cache pressure) here at drain, in canonical JSON;
          setting it turns collection on *)
  log : bool;  (** chatty lifecycle lines on stderr *)
}

(** Sensible defaults: one worker per recommended domain, queue of
    128, no deadline, 4 MiB frames, 10M evaluation steps, the
    dictionary backend, quiet. *)
val default_config : address -> config

type t

(** Bind the listener and spawn the worker domains (does not accept
    yet).  Raises [Unix.Unix_error] if the address is unusable. *)
val create : config -> t

(** The bound address — for TCP with port 0, the OS-chosen port. *)
val bound_address : t -> address

(** Accept and serve until a [shutdown] request or {!signal_stop},
    then drain and tear everything down before returning. *)
val run : t -> unit

(** [create] + [run]. *)
val serve : config -> unit

(** Async-signal-safe stop request: only flips an atomic flag (no
    locks), so it is what SIGTERM/SIGINT handlers should call; the
    accept loop notices within its 100ms poll and begins the drain. *)
val signal_stop : t -> unit

(** Begin a drain from a normal (non-signal) context — tests use this
    as an in-process SIGTERM. *)
val request_shutdown : t -> unit
