(** First-order terms over uninterpreted function symbols.

    The congruence closure is generic: clients (the FG type-equality
    engine) encode their objects as terms.  A symbol is a plain string;
    arity is implicit in the argument list, and the same symbol name used
    at two different arities denotes two different function symbols. *)

type t = { sym : string; args : t list }

let make sym args = { sym; args }
let const sym = { sym; args = [] }

let rec equal a b =
  String.equal a.sym b.sym && List.equal equal a.args b.args

let rec size t = 1 + List.fold_left (fun acc a -> acc + size a) 0 t.args

let rec depth t = 1 + List.fold_left (fun acc a -> max acc (depth a)) 0 t.args

(** Total order: by size, then structure.  Used as the default
    representative preference (smallest term wins, deterministically). *)
let rec compare a b =
  let c = Int.compare (size a) (size b) in
  if c <> 0 then c
  else
    let c = String.compare a.sym b.sym in
    if c <> 0 then c else List.compare compare a.args b.args

let rec pp ppf t =
  match t.args with
  | [] -> Fmt.string ppf t.sym
  | args -> Fmt.pf ppf "%s(@[%a@])" t.sym (Fmt.list ~sep:Fmt.comma pp) args

let to_string t = Fg_util.Pp_util.to_string pp t
