(** Recursive-descent parser for System FG concrete syntax.

    The grammar extends the System F syntax with:
    {v
    ty       ::= ... | "forall" tyvar+ ["where" constr,+] "." ty
               | UIDENT "<" ty,+ ">" "." lident           (associated type)
    constr   ::= UIDENT "<" ty,+ ">"                      (model requirement)
               | ty "==" ty                               (same-type)
    exp      ::= ... | "tfun" tyvar+ ["where" constr,+] "=>" exp
               | UIDENT "<" ty,+ ">" "." lident           (member access)
               | "concept" UIDENT "<" tyvar,+ ">" "{" citem* "}" "in" exp
               | "model" UIDENT "<" ty,+ ">" "{" mitem* "}" "in" exp
               | "type" lident "=" ty "in" exp
    citem    ::= "types" lident,+ ";"
               | "refines" (UIDENT "<" ty,+ ">"),+ ";"
               | "same" ty "==" ty ";"
               | lident ":" ty ";"
    mitem    ::= "types" lident "=" ty ";" | lident "=" exp ";"
    v}

    The only delicate point is the type-level where clause: the clause
    terminator is ["."], which is also the associated-type projection
    operator.  After a model requirement [C<τ̄>], a following
    [". s =="] means the requirement was really the head of a same-type
    constraint on [C<τ̄>.s]; any other [". ..."] ends the clause.  Three
    tokens of lookahead decide. *)

open Fg_syntax
open Ast
module P = Parser_base
module T = Token

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

let rec parse_ty p : ty =
  match P.peek p with
  | T.KW "forall" ->
      P.skip p;
      let tvs = parse_tyvars p in
      let constrs =
        if P.at_kw p "where" then begin
          P.skip p;
          parse_constrs p
        end
        else []
      in
      ignore (P.expect p T.DOT);
      TForall (tvs, constrs, parse_ty p)
  | T.KW "fn" ->
      P.skip p;
      ignore (P.expect p T.LPAREN);
      let args =
        if P.eat p T.RPAREN then []
        else begin
          let args = P.sep_list p ~sep:T.COMMA ~elem:parse_ty in
          ignore (P.expect p T.RPAREN);
          args
        end
      in
      ignore (P.expect p T.ARROW);
      TArrow (args, parse_ty p)
  | _ -> parse_tuple_ty p

and parse_tyvars p =
  let rec go acc =
    match P.peek p with
    | T.LIDENT a ->
        P.skip p;
        go (a :: acc)
    | _ -> List.rev acc
  in
  match P.peek p with
  | T.LIDENT _ -> go []
  | _ -> P.error p "expected type variable"

(* Comma-separated constraints; ends before the clause terminator. *)
and parse_constrs p : constr list =
  P.sep_list p ~sep:T.COMMA ~elem:parse_constr

and parse_constr p : constr =
  match P.peek p with
  | T.UIDENT _ ->
      let c, args = parse_concept_app p in
      (* "C<τ̄> . s ==" begins a same-type constraint; any other "."
         terminates the where clause (the "." is left unconsumed). *)
      if
        P.peek p = T.DOT
        && (match P.peek2 p with T.LIDENT _ -> true | _ -> false)
        && P.peek_nth p 2 = T.EQEQ
      then begin
        P.skip p;
        let s = P.expect_lident p in
        ignore (P.expect p T.EQEQ);
        CSame (TAssoc (c, args, s), parse_ty p)
      end
      else CModel (c, args)
  | _ ->
      let lhs = parse_ty p in
      ignore (P.expect p T.EQEQ);
      CSame (lhs, parse_ty p)

and parse_concept_app p : string * ty list =
  let c = P.expect_uident p in
  ignore (P.expect p T.LT);
  let args = P.sep_list p ~sep:T.COMMA ~elem:parse_ty in
  ignore (P.expect p T.GT);
  (c, args)

and parse_tuple_ty p : ty =
  let first = parse_list_ty p in
  if P.eat p T.STAR then
    let rec go acc =
      let t = parse_list_ty p in
      if P.eat p T.STAR then go (t :: acc) else List.rev (t :: acc)
    in
    TTuple (first :: go [])
  else first

and parse_list_ty p : ty =
  if P.at_kw p "list" then begin
    P.skip p;
    TList (parse_atom_ty p)
  end
  else parse_atom_ty p

and parse_atom_ty p : ty =
  match P.peek p with
  | T.KW "int" ->
      P.skip p;
      TBase TInt
  | T.KW "bool" ->
      P.skip p;
      TBase TBool
  | T.KW "unit" ->
      P.skip p;
      TBase TUnit
  | T.KW "list" ->
      P.skip p;
      TList (parse_atom_ty p)
  | T.KW "tuple" ->
      P.skip p;
      ignore (P.expect p T.LPAREN);
      if P.eat p T.RPAREN then TTuple []
      else begin
        let ts = P.sep_list p ~sep:T.COMMA ~elem:parse_ty in
        ignore (P.expect p T.RPAREN);
        TTuple ts
      end
  | T.LIDENT a ->
      P.skip p;
      TVar a
  | T.UIDENT _ ->
      let c, args = parse_concept_app p in
      ignore (P.expect p T.DOT);
      let s = P.expect_lident p in
      TAssoc (c, args, s)
  | T.LPAREN ->
      P.skip p;
      let t = parse_ty p in
      ignore (P.expect p T.RPAREN);
      t
  | _ -> P.error p "expected a type"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let ident_exp ~loc x =
  if Fg_systemf.Prims.is_prim x then prim ~loc x else var ~loc x

let rec parse_exp p : exp =
  let start = P.loc p in
  let merged () = Fg_util.Loc.merge start (P.prev_loc p) in
  match P.peek p with
  | T.KW "let" ->
      (* Declaration nodes span their own syntax through the trailing
         "in" — not the body continuation — exactly as the recovering
         spine parser's [parse_decl_step] builds them, so both parse
         paths give every declaration the same span (and the same
         compilation-unit content hash). *)
      P.skip p;
      let x = P.expect_lident p in
      ignore (P.expect p T.EQ);
      let rhs = parse_exp p in
      P.expect_kw p "in";
      let loc = merged () in
      let_ ~loc x rhs (parse_exp p)
  | T.KW "fun" ->
      P.skip p;
      ignore (P.expect p T.LPAREN);
      let params = P.sep_list p ~sep:T.COMMA ~elem:parse_param in
      ignore (P.expect p T.RPAREN);
      ignore (P.expect p T.DARROW);
      abs ~loc:(merged ()) params (parse_exp p)
  | T.KW "tfun" ->
      P.skip p;
      let tvs = parse_tyvars p in
      let constrs =
        if P.at_kw p "where" then begin
          P.skip p;
          parse_constrs p
        end
        else []
      in
      ignore (P.expect p T.DARROW);
      tyabs ~loc:(merged ()) tvs constrs (parse_exp p)
  | T.KW "fix" ->
      P.skip p;
      ignore (P.expect p T.LPAREN);
      let x = P.expect_lident p in
      ignore (P.expect p T.COLON);
      let t = parse_ty p in
      ignore (P.expect p T.RPAREN);
      ignore (P.expect p T.DARROW);
      fix ~loc:(merged ()) x t (parse_exp p)
  | T.KW "if" ->
      P.skip p;
      let c = parse_exp p in
      P.expect_kw p "then";
      let t = parse_exp p in
      P.expect_kw p "else";
      let f = parse_exp p in
      if_ ~loc:(merged ()) c t f
  | T.KW "concept" ->
      let d = parse_concept_decl p in
      P.expect_kw p "in";
      let loc = merged () in
      concept_decl ~loc d (parse_exp p)
  | T.KW "model" ->
      let d = parse_model_decl p in
      P.expect_kw p "in";
      let loc = merged () in
      model_decl ~loc d (parse_exp p)
  | T.KW "type" ->
      P.skip p;
      let t = P.expect_lident p in
      ignore (P.expect p T.EQ);
      let ty = parse_ty p in
      P.expect_kw p "in";
      let loc = merged () in
      type_alias ~loc t ty (parse_exp p)
  | T.KW "using" ->
      P.skip p;
      let m = P.expect_lident p in
      P.expect_kw p "in";
      let loc = merged () in
      using ~loc m (parse_exp p)
  | _ -> parse_or p

and parse_param p =
  let x = P.expect_lident p in
  ignore (P.expect p T.COLON);
  let t = parse_ty p in
  (x, t)

(* The desugared application spans both operands (the operator prim
   keeps the caller's anchor), so operand spans nest inside it and a
   position query over the whole [a OP b] lands on the application. *)
and binop ~loc prim_name a b =
  app ~loc:(Fg_util.Loc.merge a.loc b.loc) (prim ~loc prim_name) [ a; b ]

and parse_or p =
  let rec go lhs =
    if P.eat p T.BARBAR then go (binop ~loc:lhs.loc "bor" lhs (parse_and p))
    else lhs
  in
  go (parse_and p)

and parse_and p =
  let rec go lhs =
    if P.eat p T.ANDAND then go (binop ~loc:lhs.loc "band" lhs (parse_cmp p))
    else lhs
  in
  go (parse_cmp p)

and parse_cmp p =
  let lhs = parse_add p in
  let op =
    match P.peek p with
    | T.EQEQ -> Some "ieq"
    | T.NEQ -> Some "ineq"
    | T.LT -> Some "ilt"
    | T.LE -> Some "ile"
    | T.GT -> Some "igt"
    | T.GE -> Some "ige"
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some name ->
      P.skip p;
      binop ~loc:lhs.loc name lhs (parse_add p)

and parse_add p =
  let rec go lhs =
    match P.peek p with
    | T.PLUS ->
        P.skip p;
        go (binop ~loc:lhs.loc "iadd" lhs (parse_mul p))
    | T.MINUS ->
        P.skip p;
        go (binop ~loc:lhs.loc "isub" lhs (parse_mul p))
    | _ -> lhs
  in
  go (parse_mul p)

and parse_mul p =
  let rec go lhs =
    match P.peek p with
    | T.STAR ->
        P.skip p;
        go (binop ~loc:lhs.loc "imult" lhs (parse_unary p))
    | T.SLASH ->
        P.skip p;
        go (binop ~loc:lhs.loc "idiv" lhs (parse_unary p))
    | T.PERCENT ->
        P.skip p;
        go (binop ~loc:lhs.loc "imod" lhs (parse_unary p))
    | _ -> lhs
  in
  go (parse_unary p)

and parse_unary p =
  let loc = P.loc p in
  match P.peek p with
  | T.MINUS -> (
      P.skip p;
      (* Fold negation of an integer literal into a negative literal, so
         printed negative constants parse back to themselves. *)
      match parse_unary p with
      | { desc = Lit (LInt n); loc = nloc } ->
          lit ~loc:(Fg_util.Loc.merge loc nloc) (LInt (-n))
      | e -> app ~loc:(Fg_util.Loc.merge loc e.loc) (prim ~loc "ineg") [ e ])
  | T.BANG | T.KW "not" ->
      P.skip p;
      let e = parse_unary p in
      app ~loc:(Fg_util.Loc.merge loc e.loc) (prim ~loc "bnot") [ e ]
  | _ -> parse_postfix p

and parse_postfix p =
  let rec go e =
    match P.peek p with
    | T.LPAREN ->
        P.skip p;
        let args =
          if P.eat p T.RPAREN then []
          else begin
            let args = P.sep_list p ~sep:T.COMMA ~elem:parse_exp in
            ignore (P.expect p T.RPAREN);
            args
          end
        in
        go (app ~loc:(Fg_util.Loc.merge e.loc (P.prev_loc p)) e args)
    | T.LBRACKET ->
        P.skip p;
        let tys = P.sep_list p ~sep:T.COMMA ~elem:parse_ty in
        ignore (P.expect p T.RBRACKET);
        go (tyapp ~loc:(Fg_util.Loc.merge e.loc (P.prev_loc p)) e tys)
    | _ -> e
  in
  go (parse_atom p)

and parse_atom p : exp =
  let loc = P.loc p in
  match P.peek p with
  | T.INT n ->
      P.skip p;
      int ~loc n
  | T.KW "true" ->
      P.skip p;
      bool ~loc true
  | T.KW "false" ->
      P.skip p;
      bool ~loc false
  | T.KW "nth" ->
      P.skip p;
      let e = parse_atom p in
      let k = P.expect_int p in
      nth ~loc:(Fg_util.Loc.merge loc (P.prev_loc p)) e k
  | T.KW "tuple" ->
      P.skip p;
      ignore (P.expect p T.LPAREN);
      if P.eat p T.RPAREN then
        tuple ~loc:(Fg_util.Loc.merge loc (P.prev_loc p)) []
      else begin
        let es = P.sep_list p ~sep:T.COMMA ~elem:parse_exp in
        ignore (P.expect p T.RPAREN);
        tuple ~loc:(Fg_util.Loc.merge loc (P.prev_loc p)) es
      end
  | T.LIDENT x ->
      P.skip p;
      ident_exp ~loc x
  | T.UIDENT _ ->
      let c, args = parse_concept_app p in
      ignore (P.expect p T.DOT);
      let x = P.expect_lident p in
      member ~loc:(Fg_util.Loc.merge loc (P.prev_loc p)) c args x
  | T.LPAREN ->
      P.skip p;
      if P.eat p T.RPAREN then unit ~loc:(Fg_util.Loc.merge loc (P.prev_loc p)) ()
      else begin
        let es = P.sep_list p ~sep:T.COMMA ~elem:parse_exp in
        ignore (P.expect p T.RPAREN);
        match es with
        | [ e ] -> e
        | es -> tuple ~loc:(Fg_util.Loc.merge loc (P.prev_loc p)) es
      end
  | _ -> P.error p "expected an expression"

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)

and parse_concept_decl p : concept_decl =
  let start = P.loc p in
  P.expect_kw p "concept";
  let name = P.expect_uident p in
  ignore (P.expect p T.LT);
  let params = P.sep_list p ~sep:T.COMMA ~elem:P.expect_lident in
  ignore (P.expect p T.GT);
  ignore (P.expect p T.LBRACE);
  let assoc = ref [] in
  let refines = ref [] in
  let requires = ref [] in
  let members = ref [] in
  let defaults = ref [] in
  let same = ref [] in
  let rec items () =
    match P.peek p with
    | T.RBRACE -> P.skip p
    | T.KW "types" ->
        P.skip p;
        let names = P.sep_list p ~sep:T.COMMA ~elem:P.expect_lident in
        ignore (P.expect p T.SEMI);
        assoc := !assoc @ names;
        items ()
    | T.KW "refines" ->
        P.skip p;
        let rs = P.sep_list p ~sep:T.COMMA ~elem:parse_concept_app in
        ignore (P.expect p T.SEMI);
        refines := !refines @ rs;
        items ()
    | T.KW "require" ->
        P.skip p;
        let rs = P.sep_list p ~sep:T.COMMA ~elem:parse_concept_app in
        ignore (P.expect p T.SEMI);
        requires := !requires @ rs;
        items ()
    | T.KW "same" ->
        P.skip p;
        let a = parse_ty p in
        ignore (P.expect p T.EQEQ);
        let b = parse_ty p in
        ignore (P.expect p T.SEMI);
        same := !same @ [ (a, b) ];
        items ()
    | T.LIDENT _ ->
        let x = P.expect_lident p in
        ignore (P.expect p T.COLON);
        let ty = parse_ty p in
        (* optional default body: x : τ = e; *)
        if P.eat p T.EQ then begin
          let e = parse_exp p in
          defaults := !defaults @ [ (x, e) ]
        end;
        ignore (P.expect p T.SEMI);
        members := !members @ [ (x, ty) ];
        items ()
    | _ -> P.error p "expected a concept item or '}'"
  in
  items ();
  {
    c_name = name;
    c_params = params;
    c_assoc = !assoc;
    c_refines = !refines;
    c_requires = !requires;
    c_members = !members;
    c_defaults = !defaults;
    c_same = !same;
    c_loc = Fg_util.Loc.merge start (P.prev_loc p);
  }

and parse_model_decl p : model_decl =
  let start = P.loc p in
  P.expect_kw p "model";
  (* named model: model m = C<args> {...} *)
  let name =
    match (P.peek p, P.peek2 p) with
    | T.LIDENT m, T.EQ ->
        P.skip p;
        P.skip p;
        Some m
    | _ -> None
  in
  (* parameterized model: model <t, u> [where constrs =>] C<args> {...} *)
  let params, constrs =
    if P.eat p T.LT then begin
      let params = P.sep_list p ~sep:T.COMMA ~elem:P.expect_lident in
      ignore (P.expect p T.GT);
      let constrs =
        if P.at_kw p "where" then begin
          P.skip p;
          let cs = parse_constrs p in
          ignore (P.expect p T.DARROW);
          cs
        end
        else []
      in
      (params, constrs)
    end
    else ([], [])
  in
  let concept, args = parse_concept_app_after_kw p in
  ignore (P.expect p T.LBRACE);
  let assoc = ref [] in
  let members = ref [] in
  let rec items () =
    match P.peek p with
    | T.RBRACE -> P.skip p
    | T.KW "types" ->
        P.skip p;
        let s = P.expect_lident p in
        ignore (P.expect p T.EQ);
        let ty = parse_ty p in
        ignore (P.expect p T.SEMI);
        assoc := !assoc @ [ (s, ty) ];
        items ()
    | T.LIDENT _ ->
        let x = P.expect_lident p in
        ignore (P.expect p T.EQ);
        let e = parse_exp p in
        ignore (P.expect p T.SEMI);
        members := !members @ [ (x, e) ];
        items ()
    | _ -> P.error p "expected a model item or '}'"
  in
  items ();
  {
    m_name = name;
    m_params = params;
    m_constrs = constrs;
    m_concept = concept;
    m_args = args;
    m_assoc = !assoc;
    m_members = !members;
    m_loc = Fg_util.Loc.merge start (P.prev_loc p);
  }

and parse_concept_app_after_kw p = parse_concept_app p

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let exp_of_string ?file src =
  let p = P.of_string ?file src in
  let e = parse_exp p in
  P.expect_eof p;
  e

let ty_of_string ?file src =
  let p = P.of_string ?file src in
  let t = parse_ty p in
  P.expect_eof p;
  t

let constr_of_string ?file src =
  let p = P.of_string ?file src in
  let c = parse_constr p in
  P.expect_eof p;
  c

(* ------------------------------------------------------------------ *)
(* Recovering entry point                                              *)

let at_decl_kw p = Fg_syntax.Declscan.is_decl_kw (P.peek p)

(* The name a declaration is about to bind, read off the lookahead
   before parsing commits.  Needed so that a declaration that fails to
   parse can still poison its binding. *)
let decl_binder_hint p =
  match (P.peek p, P.peek2 p) with
  | T.KW ("let" | "type" | "using"), T.LIDENT x -> Some x
  | T.KW "concept", T.UIDENT c -> Some c
  | T.KW "model", T.LIDENT m when P.peek_nth p 2 = T.EQ -> Some m
  | _ -> None

(* Parse one top-level declaration including its trailing "in",
   returning the wrap that grafts a body under it.  Precondition: the
   cursor is at a declaration keyword (so at least one token is always
   consumed, even on failure). *)
let parse_decl_step p : exp -> exp =
  let start = P.loc p in
  let merged () = Fg_util.Loc.merge start (P.prev_loc p) in
  match P.peek p with
  | T.KW "let" ->
      P.skip p;
      let x = P.expect_lident p in
      ignore (P.expect p T.EQ);
      let rhs = parse_exp p in
      P.expect_kw p "in";
      let loc = merged () in
      fun body -> let_ ~loc x rhs body
  | T.KW "concept" ->
      let d = parse_concept_decl p in
      P.expect_kw p "in";
      let loc = merged () in
      fun body -> concept_decl ~loc d body
  | T.KW "model" ->
      let d = parse_model_decl p in
      P.expect_kw p "in";
      let loc = merged () in
      fun body -> model_decl ~loc d body
  | T.KW "type" ->
      P.skip p;
      let t = P.expect_lident p in
      ignore (P.expect p T.EQ);
      let ty = parse_ty p in
      P.expect_kw p "in";
      let loc = merged () in
      fun body -> type_alias ~loc t ty body
  | T.KW "using" ->
      P.skip p;
      let m = P.expect_lident p in
      P.expect_kw p "in";
      let loc = merged () in
      fun body -> using ~loc m body
  | _ -> Fg_util.Diag.ice "parse_decl_step: not at a declaration"

(* After a syntax error, skip tokens until the next declaration keyword
   (or a declaration-terminating "in", which is consumed so the spine
   resumes after it) at bracket depth <= 0, or EOF.  Depth goes
   negative when the error was inside brackets the cursor had already
   entered; any closer then re-anchors at the enclosing level. *)
let p_recover_sync = Fg_util.Coverage.probe "recover.parser.sync"

let synchronize p =
  Fg_util.Coverage.hit p_recover_sync;
  let depth = ref 0 in
  let stop = ref false in
  while not !stop do
    match P.peek p with
    | T.EOF -> stop := true
    | t when Fg_syntax.Declscan.is_decl_kw t && !depth <= 0 -> stop := true
    | T.KW "in" when !depth <= 0 ->
        (* The failed declaration's own terminator: what follows is the
           rest of the spine (or the residual body), so resume there. *)
        P.skip p;
        stop := true
    | T.LPAREN | T.LBRACE | T.LBRACKET ->
        incr depth;
        P.skip p
    | T.RPAREN | T.RBRACE | T.RBRACKET ->
        decr depth;
        P.skip p
    | _ -> P.skip p
  done

let exp_of_string_recovering ~engine ?file src =
  let toks = Lexer.tokenize_recovering ~engine ?file src in
  let p = P.of_tokens toks in
  let wraps = ref [] in
  let poisoned = ref [] in
  let body = ref None in
  let finished = ref false in
  (* Top-level programs are a spine of declarations ending in a residual
     expression; parse the spine iteratively so a failed declaration can
     be dropped without losing the ones after it. *)
  while not !finished do
    if P.peek p = T.EOF then finished := true
    else if at_decl_kw p then begin
      let hint = decl_binder_hint p in
      match parse_decl_step p with
      | wrap -> wraps := wrap :: !wraps
      | exception Fg_util.Diag.Error d ->
          Fg_util.Diag.report engine d;
          Option.iter (fun x -> poisoned := x :: !poisoned) hint;
          synchronize p
    end
    else begin
      match
        let e = parse_exp p in
        P.expect_eof p;
        e
      with
      | e ->
          body := Some e;
          finished := true
      | exception Fg_util.Diag.Error d ->
          Fg_util.Diag.report engine d;
          synchronize p
    end
  done;
  let body =
    match !body with
    | Some e -> e
    | None ->
        (* Errors swallowed the residual expression; a unit placeholder
           lets the checker still walk the declarations that did parse.
           At least one error was reported, so no caller mistakes the
           placeholder for a result. *)
        unit ~loc:Fg_util.Loc.dummy ()
  in
  let e = List.fold_left (fun acc w -> w acc) body !wraps in
  (e, List.rev !poisoned)
