test/main.mli:
