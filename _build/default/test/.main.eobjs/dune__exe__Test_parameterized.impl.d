test/test_parameterized.ml: Alcotest Astring_contains Check Fg_core Fg_systemf Fg_util Interp List Parser Pipeline Prelude Printf QCheck QCheck_alcotest Resolution
