(* Tests for the congruence closure: unit tests on the classic
   Nelson–Oppen behaviours, plus qcheck properties against a
   brute-force reference closure. *)

module Term = Fg_congruence.Term
module Cc = Fg_congruence.Closure

let a = Term.const "a"
let b = Term.const "b"
let c = Term.const "c"
let f x = Term.make "f" [ x ]
let g x y = Term.make "g" [ x; y ]

let test_reflexive () =
  let cc = Cc.create () in
  Alcotest.(check bool) "a = a" true (Cc.equiv cc a a);
  Alcotest.(check bool) "f(a) = f(a)" true (Cc.equiv cc (f a) (f a));
  Alcotest.(check bool) "a != b" false (Cc.equiv cc a b)

let test_symmetric_transitive () =
  let cc = Cc.create () in
  Cc.merge cc a b;
  Cc.merge cc b c;
  Alcotest.(check bool) "a = c" true (Cc.equiv cc a c);
  Alcotest.(check bool) "c = a" true (Cc.equiv cc c a)

let test_congruence_up () =
  let cc = Cc.create () in
  (* interning the applications first, then merging the arguments,
     must propagate upward *)
  ignore (Cc.add cc (f a));
  ignore (Cc.add cc (f b));
  Alcotest.(check bool) "f(a) != f(b) yet" false (Cc.equiv cc (f a) (f b));
  Cc.merge cc a b;
  Alcotest.(check bool) "f(a) = f(b)" true (Cc.equiv cc (f a) (f b));
  Alcotest.(check bool) "g(a,c) = g(b,c)" true (Cc.equiv cc (g a c) (g b c))

let test_congruence_nested () =
  let cc = Cc.create () in
  Cc.merge cc a b;
  (* deep congruence: f(f(f(a))) = f(f(f(b))) *)
  Alcotest.(check bool) "deep" true (Cc.equiv cc (f (f (f a))) (f (f (f b))))

let test_no_confusion () =
  let cc = Cc.create () in
  Cc.merge cc (f a) (f b);
  (* f(a) = f(b) does NOT imply a = b (no injectivity) *)
  Alcotest.(check bool) "args not merged" false (Cc.equiv cc a b);
  (* and distinct symbols stay distinct *)
  Alcotest.(check bool) "different symbol" false
    (Cc.equiv cc (f a) (Term.make "h" [ a ]))

let test_classic_nelson_oppen () =
  (* The classic example: f(f(f(a))) = a and f(f(f(f(f(a))))) = a
     imply f(a) = a. *)
  let cc = Cc.create () in
  let rec fn n x = if n = 0 then x else fn (n - 1) (f x) in
  Cc.merge cc (fn 3 a) a;
  Cc.merge cc (fn 5 a) a;
  Alcotest.(check bool) "f(a) = a" true (Cc.equiv cc (f a) a)

let test_arity_distinguishes () =
  let cc = Cc.create () in
  (* same symbol name at different arities are different symbols *)
  let f1 = Term.make "f" [ a ] in
  let f2 = Term.make "f" [ a; a ] in
  Alcotest.(check bool) "f/1 != f/2" false (Cc.equiv cc f1 f2)

let test_repr_prefers_smaller () =
  let cc = Cc.create () in
  Cc.merge cc (f (f a)) b;
  (* default preference: smallest term represents the class *)
  Alcotest.(check bool) "repr is b" true
    (Term.equal (Cc.repr cc (f (f a))) b)

let test_repr_rebuilds_children () =
  let cc = Cc.create () in
  Cc.merge cc a b;
  (* repr of g(f(b), c): b's class best is a or b by Term.compare —
     both size 1; compare "a" < "b" so a wins *)
  let r = Cc.repr cc (g (f b) c) in
  Alcotest.(check string) "canonical rendering" "g(f(a), c)"
    (Term.to_string r)

let test_repr_cycle_detected () =
  let cc = Cc.create () in
  (* x = f(x): no finite representative; the custom prefer function
     insists on keeping f(x), forcing the cycle *)
  let prefer x y = if Term.depth x >= Term.depth y then x else y in
  let cc2 = Cc.create ~prefer () in
  Cc.merge cc2 a (f a);
  (match Fg_util.Diag.protect (fun () -> Cc.repr ~max_depth:50 cc2 a) with
  | Error d ->
      Alcotest.(check bool) "cycle reported" true
        (d.phase = Fg_util.Diag.Internal)
  | Ok r ->
      (* with depth-preferring selection this must have failed; if the
         implementation returns something it must at least be in the
         class *)
      Alcotest.(check bool) "still equal" true (Cc.equiv cc2 r a));
  ignore cc

let test_generation_counter () =
  let cc = Cc.create () in
  let g0 = Cc.generation cc in
  ignore (Cc.add cc a);
  Alcotest.(check int) "adding does not bump generation" g0 (Cc.generation cc);
  Cc.merge cc a b;
  Alcotest.(check bool) "merge bumps" true (Cc.generation cc > g0);
  let g1 = Cc.generation cc in
  Cc.merge cc a b;
  Alcotest.(check int) "redundant merge does not bump" g1 (Cc.generation cc)

let test_classes () =
  let cc = Cc.create () in
  Cc.merge cc a b;
  ignore (Cc.add cc c);
  Alcotest.(check int) "two classes" 2 (Cc.count_classes cc)

(* ---------------------------------------------------------------- *)
(* Properties                                                        *)

(* Random ground terms over a small signature. *)
let term_gen : Term.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 1 then oneofl [ a; b; c ]
      else
        frequency
          [
            (2, oneofl [ a; b; c ]);
            (2, map f (self (n / 2)));
            (1, map2 g (self (n / 2)) (self (n / 2)));
          ])

let term_arb =
  QCheck.make ~print:Term.to_string term_gen

(* Brute-force reference: closure by fixpoint over all subterm pairs. *)
let reference_equiv (eqs : (Term.t * Term.t) list) (x : Term.t) (y : Term.t) :
    bool =
  let terms = ref [] in
  let rec collect t =
    if not (List.exists (Term.equal t) !terms) then begin
      terms := t :: !terms;
      List.iter collect t.Term.args
    end
  in
  List.iter (fun (l, r) -> collect l; collect r) eqs;
  collect x;
  collect y;
  let ts = Array.of_list !terms in
  let n = Array.length ts in
  let eq = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    eq.(i).(i) <- true
  done;
  let idx t =
    let rec go i = if Term.equal ts.(i) t then i else go (i + 1) in
    go 0
  in
  List.iter
    (fun (l, r) ->
      let i = idx l and j = idx r in
      eq.(i).(j) <- true;
      eq.(j).(i) <- true)
    eqs;
  let changed = ref true in
  while !changed do
    changed := false;
    (* transitivity *)
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if eq.(i).(j) then
          for k = 0 to n - 1 do
            if eq.(j).(k) && not (eq.(i).(k)) then begin
              eq.(i).(k) <- true;
              changed := true
            end
          done
      done
    done;
    (* congruence *)
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if not eq.(i).(j) then begin
          let ti = ts.(i) and tj = ts.(j) in
          if
            String.equal ti.Term.sym tj.Term.sym
            && List.length ti.Term.args = List.length tj.Term.args
            && List.for_all2 (fun x y -> eq.(idx x).(idx y)) ti.Term.args
                 tj.Term.args
          then begin
            eq.(i).(j) <- true;
            changed := true
          end
        end
      done
    done
  done;
  eq.(idx x).(idx y)

let prop_matches_reference =
  QCheck.Test.make ~name:"closure matches brute-force reference" ~count:100
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 4) (pair term_arb term_arb))
        (pair term_arb term_arb))
    (fun (eqs, (x, y)) ->
      let cc = Cc.create () in
      List.iter (fun (l, r) -> Cc.merge cc l r) eqs;
      Cc.equiv cc x y = reference_equiv eqs x y)

let prop_repr_in_class =
  QCheck.Test.make ~name:"repr is equivalent to its argument" ~count:200
    QCheck.(
      pair (list_of_size (QCheck.Gen.int_bound 4) (pair term_arb term_arb))
        term_arb)
    (fun (eqs, x) ->
      let cc = Cc.create () in
      List.iter (fun (l, r) -> Cc.merge cc l r) eqs;
      (* guard against f(x)=x style cycles: skip if repr fails *)
      match Fg_util.Diag.protect (fun () -> Cc.repr ~max_depth:100 cc x) with
      | Ok r -> Cc.equiv cc r x
      | Error _ -> QCheck.assume_fail ())

let prop_repr_canonical =
  QCheck.Test.make ~name:"equivalent terms share a representative" ~count:200
    QCheck.(
      pair (list_of_size (QCheck.Gen.int_bound 4) (pair term_arb term_arb))
        (pair term_arb term_arb))
    (fun (eqs, (x, y)) ->
      let cc = Cc.create () in
      List.iter (fun (l, r) -> Cc.merge cc l r) eqs;
      match
        Fg_util.Diag.protect (fun () ->
            (Cc.repr ~max_depth:100 cc x, Cc.repr ~max_depth:100 cc y))
      with
      | Ok (rx, ry) ->
          if Cc.equiv cc x y then Term.equal rx ry else true
      | Error _ -> QCheck.assume_fail ())

let suite =
  [
    Alcotest.test_case "reflexivity" `Quick test_reflexive;
    Alcotest.test_case "symmetry/transitivity" `Quick test_symmetric_transitive;
    Alcotest.test_case "upward congruence" `Quick test_congruence_up;
    Alcotest.test_case "nested congruence" `Quick test_congruence_nested;
    Alcotest.test_case "no confusion" `Quick test_no_confusion;
    Alcotest.test_case "Nelson-Oppen f^3/f^5" `Quick test_classic_nelson_oppen;
    Alcotest.test_case "arity distinguishes" `Quick test_arity_distinguishes;
    Alcotest.test_case "repr prefers smaller" `Quick test_repr_prefers_smaller;
    Alcotest.test_case "repr rebuilds children" `Quick test_repr_rebuilds_children;
    Alcotest.test_case "repr cycle detected" `Quick test_repr_cycle_detected;
    Alcotest.test_case "generation counter" `Quick test_generation_counter;
    Alcotest.test_case "class counting" `Quick test_classes;
    QCheck_alcotest.to_alcotest prop_matches_reference;
    QCheck_alcotest.to_alcotest prop_repr_in_class;
    QCheck_alcotest.to_alcotest prop_repr_canonical;
  ]
