test/test_syntax.ml: Alcotest Array Astring_contains Fg_syntax Fg_util Lexer List Parser_base Token
