lib/util/loc.mli: Fmt
