(** Abstract syntax of System F — the calculus of paper Figure 2 with
    multi-parameter functions and type abstractions, tuples with [nth]
    projection (dictionaries), [let], [fix], [if], base types, lists and
    primitive constants. *)

open Fg_util

type base = TInt | TBool | TUnit

type ty =
  | TBase of base
  | TVar of string
  | TArrow of ty list * ty  (** [fn(t1, ..., tn) -> t] *)
  | TTuple of ty list  (** dictionaries *)
  | TList of ty
  | TForall of string list * ty

type lit = LInt of int | LBool of bool | LUnit

type exp = { desc : desc; loc : Loc.t }

and desc =
  | Var of string
  | Lit of lit
  | Prim of string
  | App of exp * exp list
  | Abs of (string * ty) list * exp
  | TyAbs of string list * exp
  | TyApp of exp * ty list
  | Let of string * exp * exp
  | Tuple of exp list
  | Nth of exp * int  (** 0-based projection *)
  | Fix of string * ty * exp
  | If of exp * exp * exp

(** {1 Smart constructors} *)

val mk : ?loc:Loc.t -> desc -> exp
val var : ?loc:Loc.t -> string -> exp
val lit : ?loc:Loc.t -> lit -> exp
val int : ?loc:Loc.t -> int -> exp
val bool : ?loc:Loc.t -> bool -> exp
val unit : ?loc:Loc.t -> unit -> exp
val prim : ?loc:Loc.t -> string -> exp
val app : ?loc:Loc.t -> exp -> exp list -> exp
val abs : ?loc:Loc.t -> (string * ty) list -> exp -> exp
val tyabs : ?loc:Loc.t -> string list -> exp -> exp
val tyapp : ?loc:Loc.t -> exp -> ty list -> exp
val let_ : ?loc:Loc.t -> string -> exp -> exp -> exp
val tuple : ?loc:Loc.t -> exp list -> exp
val nth : ?loc:Loc.t -> exp -> int -> exp
val fix : ?loc:Loc.t -> string -> ty -> exp -> exp
val if_ : ?loc:Loc.t -> exp -> exp -> exp -> exp

(** [nth_path e [n1; ...; nk]] builds [(nth ... (nth e n1) ... nk)] —
    the dictionary-path projections of the MEM and TAPP rules. *)
val nth_path : ?loc:Loc.t -> exp -> int list -> exp

(** {1 Type operations} *)

module Smap := Fg_util.Names.Smap
module Sset := Fg_util.Names.Sset

val base_equal : base -> base -> bool
val ftv : ty -> Sset.t

(** Capture-avoiding simultaneous substitution. *)
val subst_ty : ty Smap.t -> ty -> ty

val subst_ty_list : (string * ty) list -> ty -> ty

(** Alpha-equivalence — the comparison Theorem checking uses. *)
val alpha_equal : ty -> ty -> bool

val ty_size : ty -> int

(** {1 Expression helpers} *)

val exp_size : exp -> int

(** Structural equality, ignoring locations (not up to term alpha). *)
val exp_equal : exp -> exp -> bool

(** Free term variables. *)
val free_vars : exp -> Sset.t

(** Capture-avoiding simultaneous substitution of expressions for term
    variables (binders renamed where an image variable would be
    captured). *)
val subst_exp : exp Smap.t -> exp -> exp

(** Substitute types for type variables throughout an expression. *)
val subst_ty_exp : ty Smap.t -> exp -> exp
