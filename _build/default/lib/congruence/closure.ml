(** Congruence closure over uninterpreted function symbols.

    This is the decision procedure for the quantifier-free theory of
    equality that System FG's same-type constraints reduce to (paper
    Section 5, citing Nelson and Oppen's O(n log n) algorithm).  Terms
    are interned into a node graph; {!merge} asserts an equality and
    propagates it upward through congruence ([a = b] implies
    [f(a) = f(b)]); {!equiv} answers queries; {!repr} returns the
    canonical member of a term's equivalence class — the translation to
    System F emits this representative for every type in a class.

    Representative preference is client-controlled via [prefer]: given
    two candidate terms it returns the one that should represent the
    class.  The FG translation prefers plain type variables (earliest
    interned first) over associated-type projections, matching the
    paper's choice of [elt1] over [elt2] in the [merge] example. *)

module Uf = Fg_unionfind.Uf

type node = {
  id : int;
  term : Term.t;
  args : int list;  (** node ids of immediate subterms *)
}

type t = {
  uf : Uf.t;
  mutable nodes : node array;  (** indexed by node id *)
  mutable n_nodes : int;
  intern : (string * int list, int) Hashtbl.t;
      (** structural hashcons: (symbol, exact child ids) -> node id *)
  sigs : (string * int list, int) Hashtbl.t;
      (** congruence signatures: (symbol, child class roots) -> node id *)
  use : (int, int list) Hashtbl.t;
      (** class root -> ids of parent nodes with a child in that class *)
  best : (int, Term.t) Hashtbl.t;  (** class root -> preferred member term *)
  prefer : Term.t -> Term.t -> Term.t;
  mutable generation : int;
      (** bumped on every merge; lets clients cache query results *)
}

let default_prefer a b = if Term.compare a b <= 0 then a else b

let create ?(prefer = default_prefer) () =
  {
    uf = Uf.create ();
    nodes = [||];
    n_nodes = 0;
    intern = Hashtbl.create 64;
    sigs = Hashtbl.create 64;
    use = Hashtbl.create 64;
    best = Hashtbl.create 64;
    prefer;
    generation = 0;
  }

let generation t = t.generation
let size t = t.n_nodes

let node t id =
  if id < 0 || id >= t.n_nodes then
    Fg_util.Diag.ice "congruence: node id %d out of range" id;
  t.nodes.(id)

let store_node t n =
  if t.n_nodes >= Array.length t.nodes then begin
    let cap = max 16 (2 * Array.length t.nodes) in
    let arr = Array.make cap n in
    Array.blit t.nodes 0 arr 0 t.n_nodes;
    t.nodes <- arr
  end;
  t.nodes.(t.n_nodes) <- n;
  t.n_nodes <- t.n_nodes + 1

let use_of t root = Option.value (Hashtbl.find_opt t.use root) ~default:[]

let signature t n = (n.term.Term.sym, List.map (Uf.find t.uf) n.args)

(* Merge propagation worklist.  Each entry is a pair of node ids whose
   classes must be unified. *)
let rec process t worklist =
  match worklist with
  | [] -> ()
  | (x, y) :: rest ->
      let rx = Uf.find t.uf x and ry = Uf.find t.uf y in
      if rx = ry then process t rest
      else begin
        t.generation <- t.generation + 1;
        let px = use_of t rx and py = use_of t ry in
        (* Drop the parents' stale signatures before the union changes
           child roots. *)
        List.iter (fun p -> Hashtbl.remove t.sigs (signature t (node t p))) px;
        List.iter (fun p -> Hashtbl.remove t.sigs (signature t (node t p))) py;
        let bx = Hashtbl.find t.best rx and by = Hashtbl.find t.best ry in
        let r = Uf.union t.uf rx ry in
        let dead = if r = rx then ry else rx in
        Hashtbl.remove t.use dead;
        Hashtbl.remove t.best dead;
        Hashtbl.replace t.use r (px @ py);
        Hashtbl.replace t.best r (t.prefer bx by);
        (* Re-insert parents; congruent collisions feed the worklist. *)
        let extra = ref rest in
        List.iter
          (fun p ->
            let s = signature t (node t p) in
            match Hashtbl.find_opt t.sigs s with
            | Some q when Uf.find t.uf q <> Uf.find t.uf p ->
                extra := (p, q) :: !extra
            | Some _ -> ()
            | None -> Hashtbl.add t.sigs s p)
          (px @ py);
        process t !extra
      end

(** Intern [term], returning its node id.  Subterms are interned first;
    if a congruent node already exists (same symbol, equivalent
    children) the new node is merged into its class immediately. *)
let rec add t (term : Term.t) =
  let args = List.map (add t) term.args in
  match Hashtbl.find_opt t.intern (term.sym, args) with
  | Some id -> id
  | None ->
      let id = Uf.make_set t.uf in
      let n = { id; term; args } in
      store_node t n;
      Hashtbl.add t.intern (term.sym, args) id;
      Hashtbl.replace t.best id term;
      List.iter
        (fun a ->
          let ra = Uf.find t.uf a in
          Hashtbl.replace t.use ra (id :: use_of t ra))
        args;
      (let s = signature t n in
       match Hashtbl.find_opt t.sigs s with
       | Some q -> process t [ (id, q) ]
       | None -> Hashtbl.add t.sigs s id);
      id

(** Assert that [a] and [b] are equal. *)
let merge t a b =
  let x = add t a and y = add t b in
  process t [ (x, y) ]

(** Are [a] and [b] in the same class under the asserted equalities? *)
let equiv t a b =
  let x = add t a and y = add t b in
  Uf.equiv t.uf x y

(** The preferred member of [a]'s class, rebuilt recursively so every
    subterm is also canonical.  A depth fuse guards against cyclic
    equalities such as [x = f(x)], which have no finite canonical form —
    FG's typing rules never generate them, but user programs can write
    them, so we fail with a diagnostic rather than diverge. *)
let repr ?(max_depth = 10_000) t a =
  let rec go depth (term : Term.t) =
    if depth > max_depth then
      Fg_util.Diag.ice
        "congruence: no finite representative (cyclic equality involving %s)"
        (Term.to_string a);
    let id = add t term in
    let best = Hashtbl.find t.best (Uf.find t.uf id) in
    if best.Term.args = [] then best
    else
      let args' = List.map (go (depth + 1)) best.Term.args in
      if List.equal ( == ) args' best.Term.args then best
      else Term.make best.Term.sym args'
  in
  go 0 a

(** All equivalence classes, as lists of interned terms (tests only). *)
let classes t =
  let tbl = Hashtbl.create 16 in
  for id = t.n_nodes - 1 downto 0 do
    let r = Uf.find t.uf id in
    let cur = Option.value (Hashtbl.find_opt tbl r) ~default:[] in
    Hashtbl.replace tbl r ((node t id).term :: cur)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) tbl []

let count_classes t = List.length (classes t)
