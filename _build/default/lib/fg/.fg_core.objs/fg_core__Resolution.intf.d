lib/fg/resolution.mli:
