test/test_theorems.ml: Alcotest Ast Check Corpus Fg_core Fg_systemf Fg_util Gen List Parser Prelude Pretty Printf QCheck QCheck_alcotest Resolution Theorems
