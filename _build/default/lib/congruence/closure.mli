(** Congruence closure over uninterpreted function symbols — the
    decision procedure for the quantifier-free theory of equality that
    System FG's same-type constraints reduce to (paper Section 5, citing
    Nelson and Oppen's O(n log n) algorithm).

    Terms are interned into a node graph; {!merge} asserts an equality
    and propagates it upward through congruence ([a = b] implies
    [f(a) = f(b)]); {!equiv} answers queries; {!repr} returns the
    canonical member of a term's class — the FG translation emits this
    representative for every type in a class. *)

type t

(** [create ?prefer ()] — an empty closure.  [prefer a b] returns
    whichever of two candidate terms should represent their merged
    class; the default prefers the smaller term. *)
val create : ?prefer:(Term.t -> Term.t -> Term.t) -> unit -> t

(** Bumped on every class merge; lets clients cache query results. *)
val generation : t -> int

(** Number of interned nodes. *)
val size : t -> int

(** Intern a term (and its subterms), returning its node id.  If a
    congruent node already exists, the new node joins its class. *)
val add : t -> Term.t -> int

(** Assert that two terms are equal. *)
val merge : t -> Term.t -> Term.t -> unit

(** Does the equality of the two terms follow from the assertions? *)
val equiv : t -> Term.t -> Term.t -> bool

(** The preferred member of the term's class, rebuilt recursively so
    every subterm is also canonical.  [max_depth] (default 10000) guards
    against cyclic equalities such as [x = f(x)], which have no finite
    canonical form; exceeding it raises an internal diagnostic. *)
val repr : ?max_depth:int -> t -> Term.t -> Term.t

(** All equivalence classes among interned terms (tests only). *)
val classes : t -> Term.t list list

val count_classes : t -> int
