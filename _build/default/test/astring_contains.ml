(* Tiny substring helper for error-message assertions in tests. *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else if nl > hl then false
  else
    let rec go i =
      if i + nl > hl then false
      else if String.sub haystack i nl = needle then true
      else go (i + 1)
    in
    go 0
