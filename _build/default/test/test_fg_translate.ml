(* Tests for the dictionary-passing translation: the exact shapes the
   paper shows in Section 4, Figure 7 and Section 5.2. *)

open Fg_core
module F = Fg_systemf

let translate src =
  Check.translate ~escape_check:false (Parser.exp_of_string src)

let flat src = F.Pretty.exp_to_flat_string (translate src)

let contains s ~needle =
  if not (Astring_contains.contains ~needle s) then
    Alcotest.failf "expected %S in:\n%s" needle s

let monoid = Corpus.monoid_prelude

(* Section 4: "model Semigroup<int> ... translates to a pair of let
   expressions" with nested dictionaries (Figure 7). *)
let test_dictionary_shape () =
  let s =
    flat
      (monoid
     ^ {|model Semigroup<int> { binary_op = iadd; } in
model Monoid<int> { identity_elt = 0; } in
0|})
  in
  (* Semigroup dict is the 1-tuple (iadd); Monoid embeds it: (sg, 0) *)
  contains s ~needle:"tuple(iadd)";
  contains s ~needle:", 0)"

(* Section 4: where clauses become dictionary parameters; the function
   is curried — type application first, then the dictionary. *)
let test_curried_application () =
  let s =
    flat
      (monoid
     ^ {|let f = tfun t where Monoid<t> => fun (x : t) => x in
model Semigroup<int> { binary_op = iadd; } in
model Monoid<int> { identity_elt = 0; } in
f[int](3)|})
  in
  (* f[int](Monoid_N)(3) *)
  contains s ~needle:"f[int](Monoid_";
  contains s ~needle:")(3)"

(* Section 4: member accesses become nth projections along the path. *)
let test_member_paths () =
  let s =
    flat
      (monoid
     ^ {|tfun t where Monoid<t> =>
 (Monoid<t>.binary_op, Monoid<t>.identity_elt, Semigroup<t>.binary_op)|})
  in
  (* binary_op reached through the refinement dictionary: path [0; 0];
     identity_elt at [1]; via Semigroup's own proxy also [0; 0] *)
  contains s ~needle:"nth (nth Monoid_";
  contains s ~needle:" 0) 0";
  contains s ~needle:" 1";
  (* the Semigroup proxy shares Monoid's dictionary *)
  Alcotest.(check int)
    "only one dictionary parameter"
    1
    (List.length
       (String.split_on_char ':' s)
     - 1
     (* one ':' from the single dict annotation: "Monoid_N : ..." *)
     |> fun n -> if n >= 1 then 1 else n)

(* No requirements: the translation is plain System F with no
   dictionary abstraction at all. *)
let test_no_requirements_no_dict () =
  let s = flat "tfun t => fun (x : t) => x" in
  Alcotest.(check string) "plain" "tfun t => fun (x : t) => x" s

(* Same-type-only where clause: constraints vanish at runtime. *)
let test_same_type_erased () =
  let s = flat "(tfun a b where a == b => fun (x : a) => x)[int, int](1)" in
  contains s ~needle:"[int, int](1)";
  if Astring_contains.contains ~needle:"fun (" (s ^ "") then ()
  (* no dictionary parameter should appear *)

(* Section 5.2: associated types become extra type parameters; the
   merge example gets parameters for both elts but uses the
   representative for all dictionary types. *)
let test_assoc_extra_params () =
  let s =
    flat
      (Corpus.iterator_concept
     ^ "tfun i where Iterator<i> => fun (it : i) => Iterator<i>.curr(it)")
  in
  (* tfun i elt_N => fun (Iterator_M : ... fn(i) -> elt_N ...) *)
  contains s ~needle:"tfun i elt_";
  contains s ~needle:"fn(i) -> elt_"

let test_merge_representative () =
  let e = Parser.exp_of_string Corpus.merge_example.source in
  let f = Check.translate e in
  let s = F.Pretty.exp_to_flat_string f in
  (* two elt parameters generated... *)
  contains s ~needle:"tfun i1 i2 o elt_";
  (* ...but only the representative appears in the dictionary types:
     the second iterator's curr must return the FIRST elt parameter *)
  (match f.F.Ast.desc with
  | F.Ast.Let
      (_, { desc = F.Ast.TyAbs (tvs, { desc = F.Ast.Abs (dicts, _); _ }); _ }, _)
    ->
      (* 3 user binders + 2 assoc slots *)
      Alcotest.(check int) "binder count" 5 (List.length tvs);
      let elt1 = List.nth tvs 3 in
      let elt2 = List.nth tvs 4 in
      (* dictionary types mention elt1 but never elt2 *)
      let dict_str =
        String.concat ";"
          (List.map (fun (_, t) -> F.Pretty.ty_to_string t) dicts)
      in
      contains dict_str ~needle:elt1;
      if Astring_contains.contains ~needle:elt2 dict_str then
        Alcotest.failf "non-representative %s leaked into dictionaries: %s"
          elt2 dict_str
  | _ -> Alcotest.fail "unexpected translation shape")

(* Section 5.2 diamonds: one type parameter per distinct associated
   type, even when reachable along two refinement paths. *)
let test_diamond_dedup () =
  let src =
    {|concept Base<t> { types b; get : fn(t) -> b; } in
concept Left<t> { refines Base<t>; } in
concept Right<t> { refines Base<t>; } in
concept Both<t> { refines Left<t>, Right<t>; } in
tfun t where Both<t> => fun (x : t) => Base<t>.get(x)|}
  in
  let f = translate src in
  match f.F.Ast.desc with
  | F.Ast.TyAbs (tvs, _) ->
      (* t + exactly ONE b slot despite the diamond *)
      Alcotest.(check int) "t plus one slot" 2 (List.length tvs)
  | _ -> Alcotest.fail "unexpected shape"

(* The translated program must be closed and well-typed — checked here
   on a few structural examples, exhaustively in test_theorems. *)
let test_translation_typechecks () =
  List.iter
    (fun (e : Corpus.entry) ->
      match e.expected with
      | Corpus.Value _ ->
          let f = Check.translate (Parser.exp_of_string e.source) in
          ignore (F.Typecheck.typecheck f)
      | Corpus.Fails _ -> ())
    Corpus.positive

(* Type aliases leave no trace in the System F output. *)
let test_alias_erased () =
  let s = flat "type t = int in (fun (x : t) => x)(1)" in
  Alcotest.(check string) "alias gone" "(fun (x : int) => x)(1)" s

(* Determinism: translating the same program twice gives identical
   output (fresh-name supplies are per-run). *)
let test_deterministic () =
  let src = Corpus.merge_example.source in
  let a = flat src and b = flat src in
  Alcotest.(check string) "deterministic" a b

(* Empty-member concepts still get (empty) dictionaries. *)
let test_empty_dictionary () =
  let s =
    flat
      {|concept Marker<t> { } in
model Marker<int> { } in
(tfun t where Marker<t> => 1)[int]|}
  in
  contains s ~needle:"tuple()"

let suite =
  [
    Alcotest.test_case "Figure 7 dictionary shape" `Quick
      test_dictionary_shape;
    Alcotest.test_case "curried application" `Quick test_curried_application;
    Alcotest.test_case "member projection paths" `Quick test_member_paths;
    Alcotest.test_case "no requirements, no dictionary" `Quick
      test_no_requirements_no_dict;
    Alcotest.test_case "same-type constraints erased" `Quick
      test_same_type_erased;
    Alcotest.test_case "assoc types become type params" `Quick
      test_assoc_extra_params;
    Alcotest.test_case "merge uses the representative" `Quick
      test_merge_representative;
    Alcotest.test_case "diamond slots deduplicated" `Quick test_diamond_dedup;
    Alcotest.test_case "translations typecheck" `Quick
      test_translation_typechecks;
    Alcotest.test_case "aliases erased" `Quick test_alias_erased;
    Alcotest.test_case "deterministic output" `Quick test_deterministic;
    Alcotest.test_case "empty dictionary" `Quick test_empty_dictionary;
  ]
