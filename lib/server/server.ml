(** The daemon: accept loop, per-connection reader threads, graceful
    shutdown (see the interface).

    Thread/domain structure: the accept loop runs wherever {!run} is
    called; each accepted connection gets a reader {e thread} (reading
    is I/O-bound, so threads in one domain are plenty), while actual
    compilation happens in the pool's worker {e domains}.  A response
    can therefore be written from any worker at any time — every write
    of a frame happens under the connection's write mutex, and a
    connection's fd is closed only when its reader has seen EOF {e
    and} its last in-flight response has been written. *)

open Fg_util

type address = Protocol.address

type config = {
  address : address;
  workers : int;
  max_queue : int;
  request_timeout_ms : int option;
  max_frame : int;
  fuel : int option;
  default_backend : Fg_core.Backend.t;
      (** backend for requests whose frame omits the [backend] field
          (v1 clients in particular) *)
  cache_dir : string option;
      (** root of the daemon's shared on-disk unit store; [None] (the
          default) runs memory-only and answers [cache_get] with
          "not found" *)
  cache_max_bytes : int option;
  cache_peers : (string * address) list;
      (** other daemons whose stores form this daemon's peer tier *)
  profile : Fg_util.Profile.t option;
      (** the daemon's default workload profile: consulted by guided
          sessions whose request ships none, and by startup
          auto-sizing (unit-cache capacity, worker count) *)
  profile_out : string option;
      (** where to write the profile collected over this daemon's
          lifetime, at drain; also flips profile collection on *)
  log : bool;
}

let default_config address =
  {
    address;
    workers = Fg_core.Session.default_domains ();
    max_queue = 128;
    request_timeout_ms = None;
    max_frame = Protocol.default_max_frame;
    fuel = Some 10_000_000;
    default_backend = Fg_core.Backend.Dict;
    cache_dir = None;
    cache_max_bytes = None;
    cache_peers = [];
    profile = None;
    profile_out = None;
    log = false;
  }

(* ---------------------------------------------------------------- *)
(* Connections                                                       *)

type conn = {
  fd : Unix.file_descr;
  wm : Mutex.t;  (** guards [fd] writes, [open_], [eof] *)
  mutable open_ : bool;
  mutable eof : bool;
  inflight : int Atomic.t;
}

let mk_conn fd =
  { fd; wm = Mutex.create (); open_ = true; eof = false;
    inflight = Atomic.make 0 }

let ignorable = function
  | Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN
  | Unix.ESHUTDOWN ->
      true
  | _ -> false

(* Write one response frame; peer-gone errors are swallowed (the
   client that hung up forfeits its responses). *)
let write_locked conn resp =
  if conn.open_ then
    try
      Protocol.write_frame conn.fd
        (Json.to_string (Protocol.response_to_json resp))
    with Unix.Unix_error (e, _, _) when ignorable e -> ()

let close_if_done_locked conn =
  if conn.open_ && conn.eof && Atomic.get conn.inflight = 0 then begin
    conn.open_ <- false;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Respond directly from the reader thread (protocol errors, overload
   — responses with no in-flight ticket). *)
let respond_direct conn resp =
  Mutex.lock conn.wm;
  write_locked conn resp;
  Mutex.unlock conn.wm

(* Respond for a job admitted with an in-flight ticket: write, release
   the ticket, close the fd if the reader is already gone. *)
let respond_inflight conn resp =
  Mutex.lock conn.wm;
  write_locked conn resp;
  Atomic.decr conn.inflight;
  close_if_done_locked conn;
  Mutex.unlock conn.wm

let mark_eof conn =
  Mutex.lock conn.wm;
  conn.eof <- true;
  close_if_done_locked conn;
  Mutex.unlock conn.wm

(* Wake a reader blocked in [read] without racing fd reuse: shutdown,
   not close — the reader's own EOF path does the close. *)
let force_shutdown conn =
  Mutex.lock conn.wm;
  (if conn.open_ then
     try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
  Mutex.unlock conn.wm

(* ---------------------------------------------------------------- *)
(* Fleet fuzzing state                                               *)

(* The daemon is the merge point of a distributed guided-fuzzing soak:
   each [fuzz_batch] folds a worker's coverage map and corpus offers in
   here and gets back the fleet-wide map plus the entries it lacks.
   Guarded by a plain mutex — batches are rare (one per worker run)
   and the merge is cheap, so contention is a non-issue. *)
type fuzz_state = {
  fm : Mutex.t;
  mutable fz_coverage : Coverage.map;  (** merged across all workers *)
  fz_corpus : (string, string) Hashtbl.t;  (** digest -> source *)
  mutable fz_batches : int;  (** fuzz_batch requests merged *)
}

let mk_fuzz_state () =
  { fm = Mutex.create (); fz_coverage = []; fz_corpus = Hashtbl.create 64;
    fz_batches = 0 }

(* ---------------------------------------------------------------- *)
(* The server                                                        *)

type t = {
  cfg : config;
  pool : Pool.t;
  disk : Fg_core.Diskcache.t option;
      (** the store behind [cache_dir]: shared by every worker and
          served to peers via [cache_get]/[cache_put] *)
  fuzz : fuzz_state;
  ws : Fg_workspace.Workspace.t;
      (** the workspace language service: open-document state served
          by the v5 doc/hover/definition/completion kinds *)
  listen_fd : Unix.file_descr;
  bound : address;  (** with the OS-chosen port resolved *)
  reg_m : Mutex.t;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  stop_requested : bool Atomic.t;
}

let logf t fmt =
  if t.cfg.log then Fmt.epr ("fgc-serve: " ^^ fmt ^^ "@.")
  else Fmt.(kstr (fun _ -> ())) fmt

let bound_address t = t.bound

(* Signal handlers must not take locks: only flip the flag; the accept
   loop notices within its poll interval and runs the drain from a
   clean context. *)
let signal_stop t = Atomic.set t.stop_requested true

let request_shutdown t =
  Atomic.set t.stop_requested true;
  Pool.initiate_stop t.pool

(* The stats payload: live pool metrics plus the static config, plus
   the process-wide specializer counters (covering every worker's
   stencil/hybrid requests, since telemetry is process-global). *)
let stats_json cfg sizing disk fuzz ws metrics =
  let t = Telemetry.snapshot () in
  let fz_batches, fz_corpus, fz_distinct, fz_total =
    Mutex.lock fuzz.fm;
    let r =
      ( fuzz.fz_batches, Hashtbl.length fuzz.fz_corpus,
        Coverage.distinct fuzz.fz_coverage, Coverage.total fuzz.fz_coverage )
    in
    Mutex.unlock fuzz.fm;
    r
  in
  Pool.metrics_to_json metrics
    ~extra:
      [
        ("workers", Json.Int cfg.workers);
        ("max_queue", Json.Int cfg.max_queue);
        ( "request_timeout_ms",
          (match cfg.request_timeout_ms with
          | Some t -> Json.Int t
          | None -> Json.Null) );
        ( "auto_sizing",
          (* what profile-driven startup sizing changed; null fields
             mean "kept the configured value" *)
          Json.Obj
            [
              ( "unit_cache_capacity",
                match sizing.Profile.sz_unit_cache_capacity with
                | Some n -> Json.Int n
                | None -> Json.Null );
              ( "workers",
                match sizing.Profile.sz_workers with
                | Some n -> Json.Int n
                | None -> Json.Null );
            ] );
        ( "specializer",
          Json.Obj
            [
              ("stencils_created", Json.Int t.Telemetry.stencils_created);
              ("stencils_shared", Json.Int t.Telemetry.stencils_shared);
              ("stencil_fallbacks", Json.Int t.Telemetry.stencil_fallbacks);
              ("dicts_hoisted", Json.Int t.Telemetry.dicts_hoisted);
            ] );
        ( "disk_cache",
          match disk with
          | None -> Json.Null
          | Some d ->
              let s = Fg_core.Diskcache.stats d in
              Json.Obj
                [
                  ("hits", Json.Int s.Fg_core.Diskcache.d_hits);
                  ("misses", Json.Int s.Fg_core.Diskcache.d_misses);
                  ("evictions", Json.Int s.Fg_core.Diskcache.d_evictions);
                  ("corrupt", Json.Int s.Fg_core.Diskcache.d_corrupt);
                  ("entries", Json.Int s.Fg_core.Diskcache.d_entries);
                  ("bytes", Json.Int s.Fg_core.Diskcache.d_bytes);
                ] );
        ( "peer_cache",
          Json.Obj
            [
              ("hits", Json.Int t.Telemetry.peer_hits);
              ("misses", Json.Int t.Telemetry.peer_misses);
              ("failures", Json.Int t.Telemetry.peer_failures);
            ] );
        ( "fuzz_soak",
          Json.Obj
            [
              ("batches", Json.Int fz_batches);
              ("corpus_size", Json.Int fz_corpus);
              ("coverage_distinct", Json.Int fz_distinct);
              ("coverage_total", Json.Int fz_total);
            ] );
        ("workspace", Fg_workspace.Workspace.stats_json ws);
      ]

let listen_on = function
  | `Unix path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, `Unix path)
  | `Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      let bound_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, `Tcp (host, bound_port))

let create cfg =
  let cfg = { cfg with workers = max 1 cfg.workers } in
  (* Profile-driven auto-sizing happens once, at startup: the profiled
     cache pressure picks the per-worker unit-cache bound, the profiled
     request volume shrinks an over-provisioned worker pool.  The
     [stats] payload reports what changed under "auto_sizing". *)
  let sizing =
    match cfg.profile with
    | Some p ->
        Profile.auto_size p ~default_capacity:Fg_core.Unit.default_capacity
          ~workers:cfg.workers
    | None -> { Profile.sz_unit_cache_capacity = None; sz_workers = None }
  in
  let cfg =
    match sizing.Profile.sz_workers with
    | Some w -> { cfg with workers = w }
    | None -> cfg
  in
  if cfg.profile_out <> None then Profile.set_collecting true;
  let disk =
    Option.map
      (Fg_core.Diskcache.open_store ?max_bytes:cfg.cache_max_bytes)
      cfg.cache_dir
  in
  let fuzz = mk_fuzz_state () in
  let ws = Fg_workspace.Workspace.create ?fuel:cfg.fuel () in
  let pool =
    Pool.create ?fuel:cfg.fuel ?disk ~peers:cfg.cache_peers
      ?unit_cache_capacity:sizing.Profile.sz_unit_cache_capacity
      ?profile:cfg.profile ~capacity:cfg.max_queue
      ~stats_json:(stats_json cfg sizing disk fuzz ws) ()
  in
  let listen_fd, bound = listen_on cfg.address in
  Pool.start ~workers:cfg.workers pool;
  {
    cfg;
    pool;
    disk;
    fuzz;
    ws;
    listen_fd;
    bound;
    reg_m = Mutex.create ();
    conns = [];
    readers = [];
    stop_requested = Atomic.make false;
  }

(* ---------------------------------------------------------------- *)
(* Reader: one thread per connection                                 *)

let deadline_of t (req : Protocol.request) ~enqueued_ns =
  match
    match req.timeout_ms with
    | Some ms -> Some ms
    | None -> t.cfg.request_timeout_ms
  with
  | Some ms -> Some (enqueued_ns + (ms * 1_000_000))
  | None -> None

(* Serve one cache_get/cache_put against the daemon's own disk store.
   These run in the reader thread, never in the pool: cache traffic
   must not wait behind compilation (two daemons peering at each other
   with full queues would deadlock), and a disk probe is cheap enough
   to answer inline.  A daemon without [--cache-dir] answers honestly
   — found:false / stored:false — so a misconfigured peer set degrades
   to misses, not errors. *)
let cache_response t (req : Protocol.request) =
  let ok fields =
    { Protocol.r_id = req.Protocol.id; r_status = Protocol.Ok_;
      r_payload = Json.to_string (Json.Obj fields) }
  in
  let malformed msg =
    { Protocol.r_id = req.Protocol.id; r_status = Protocol.Protocol_error;
      r_payload =
        Protocol.error_payload ~file:"<cache>" ~code:"FG0803" "%s" msg }
  in
  match Strutil.hex_decode req.Protocol.key with
  | None -> malformed "cache key is not valid hex"
  | Some key -> (
      match (req.Protocol.kind, t.disk) with
      | Protocol.CacheGet, Some d -> (
          match Fg_core.Diskcache.get d key with
          | Some body ->
              ok
                [ ("found", Json.Bool true);
                  ("data", Json.Str (Strutil.hex_encode body)) ]
          | None -> ok [ ("found", Json.Bool false) ])
      | Protocol.CacheGet, None -> ok [ ("found", Json.Bool false) ]
      | _, Some d -> (
          match Strutil.hex_decode req.Protocol.data with
          | None -> malformed "cache data is not valid hex"
          | Some body ->
              Fg_core.Diskcache.put d key body;
              ok [ ("stored", Json.Bool true) ])
      | _, None -> ok [ ("stored", Json.Bool false) ])

(* Serve one fuzz_batch: fold the worker's coverage map and corpus
   offers into the fleet state, reply with the merged map and the
   entries the worker lacks.  Like the cache kinds this runs in the
   reader thread, never in the pool — a merge is a few list operations
   and must not wait behind compilation.  The reply's corpus is sorted
   by digest so a worker fleet converges on identical on-disk corpora
   regardless of merge order. *)
let fuzz_response t (req : Protocol.request) =
  let fs = t.fuzz in
  Mutex.lock fs.fm;
  fs.fz_coverage <- Coverage.merge fs.fz_coverage req.Protocol.coverage;
  List.iter
    (fun (d, s) ->
      if not (Hashtbl.mem fs.fz_corpus d) then Hashtbl.add fs.fz_corpus d s)
    req.Protocol.corpus_entries;
  fs.fz_batches <- fs.fz_batches + 1;
  let merged = fs.fz_coverage in
  let batches = fs.fz_batches in
  let corpus_size = Hashtbl.length fs.fz_corpus in
  let missing =
    Hashtbl.fold
      (fun d s acc ->
        if
          List.mem d req.Protocol.have
          || List.mem_assoc d req.Protocol.corpus_entries
        then acc
        else (d, s) :: acc)
      fs.fz_corpus []
  in
  Mutex.unlock fs.fm;
  let missing = List.sort (fun (a, _) (b, _) -> compare a b) missing in
  {
    Protocol.r_id = req.Protocol.id;
    r_status = Protocol.Ok_;
    r_payload =
      Json.to_string
        (Json.Obj
           [
             ("coverage", Coverage.to_json merged);
             ( "corpus",
               Json.Obj (List.map (fun (d, s) -> (d, Json.Str s)) missing) );
             ( "fleet",
               Json.Obj
                 [
                   ("batches", Json.Int batches);
                   ("corpus_size", Json.Int corpus_size);
                   ("coverage_distinct", Json.Int (Coverage.distinct merged));
                 ] );
           ]);
  }

(* Serve one workspace request against the daemon's language service.
   Like the cache and fuzz kinds these run in the reader thread, never
   in the pool: an editor's hover must not wait behind a queued batch
   compilation, and the service serializes itself on one internal
   mutex anyway (a document re-check holds it, but re-checks touch
   only the dirty declarations, so the hold is short).  Service-level
   failures (FG0807 unknown document, FG0808 stale version) come back
   as [Failed] with the standard diagnostics envelope. *)
let workspace_response t (req : Protocol.request) =
  let ws = t.ws in
  let name = req.Protocol.file in
  let result =
    try
      match req.Protocol.kind with
    | Protocol.DocOpen ->
        Fg_workspace.Workspace.open_doc ws ~name
          ~version:req.Protocol.doc_version ~prelude:req.Protocol.prelude
          ~global_models:req.Protocol.global_models
          ~backend:req.Protocol.backend req.Protocol.source
    | Protocol.DocChange ->
        let change =
          if req.Protocol.source <> "" then
            Fg_workspace.Workspace.Full_text req.Protocol.source
          else
            Fg_workspace.Workspace.Edits
              (List.map
                 (fun (s, l, txt) ->
                   { Fg_workspace.Workspace.e_start = s; e_len = l;
                     e_text = txt })
                 req.Protocol.edits)
        in
        Fg_workspace.Workspace.change_doc ws ~name
          ~version:req.Protocol.doc_version change
    | Protocol.DocClose -> Fg_workspace.Workspace.close_doc ws ~name
    | Protocol.DocDiagnostics -> Fg_workspace.Workspace.diagnostics ws ~name
    | Protocol.Hover ->
        Fg_workspace.Workspace.hover ws ~name ~offset:req.Protocol.offset
    | Protocol.Definition ->
        Fg_workspace.Workspace.definition ws ~name
          ~offset:req.Protocol.offset
    | Protocol.Completion ->
        Fg_workspace.Workspace.completion ws ~name
          ~offset:req.Protocol.offset
      | _ -> assert false
    with Diag.Error d ->
      (* A check that escapes recovery (e.g. an ill-formed prelude)
         still answers the frame instead of killing the reader. *)
      Error
        { Fg_workspace.Workspace.ws_code = d.Diag.code;
          ws_msg = d.Diag.message }
  in
  match result with
  | Ok payload ->
      { Protocol.r_id = req.Protocol.id; r_status = Protocol.Ok_;
        r_payload = payload }
  | Error e ->
      {
        Protocol.r_id = req.Protocol.id;
        r_status = Protocol.Failed;
        r_payload =
          Protocol.error_payload ~file:name
            ~code:e.Fg_workspace.Workspace.ws_code "%s"
            e.Fg_workspace.Workspace.ws_msg;
      }

let reject conn (req : Protocol.request) status code msg =
  respond_direct conn
    {
      Protocol.r_id = req.Protocol.id;
      r_status = status;
      r_payload =
        Protocol.error_payload ~file:req.Protocol.file ~code "%s" msg;
    }

let handle_frame t conn payload =
  let metrics = Pool.metrics t.pool in
  match Json.of_string payload with
  | Error e ->
      Pool.record_protocol_error metrics;
      respond_direct conn
        {
          Protocol.r_id = 0;
          r_status = Protocol.Protocol_error;
          r_payload =
            Protocol.error_payload ~file:"<frame>" ~code:"FG0803"
              "frame is not valid JSON: %s" e;
        }
  | Ok j -> (
      match Protocol.request_of_json j with
      | Error (Protocol.Bad_version v) ->
          Pool.record_protocol_error metrics;
          respond_direct conn
            {
              Protocol.r_id =
                Option.value ~default:0 (Json.int_field "id" j);
              r_status = Protocol.Protocol_error;
              r_payload =
                (match v with
                | Some v ->
                    Protocol.error_payload ~file:"<frame>" ~code:"FG0804"
                      "protocol version mismatch: request has %d, server \
                       speaks %d"
                      v Protocol.version
                | None ->
                    Protocol.error_payload ~file:"<frame>" ~code:"FG0804"
                      "request is missing the protocol version field 'v' \
                       (server speaks %d)"
                      Protocol.version);
            }
      | Error (Protocol.Bad_request msg) ->
          Pool.record_protocol_error metrics;
          respond_direct conn
            {
              Protocol.r_id =
                Option.value ~default:0 (Json.int_field "id" j);
              r_status = Protocol.Protocol_error;
              r_payload =
                Protocol.error_payload ~file:"<frame>" ~code:"FG0803"
                  "malformed request: %s" msg;
            }
      | Ok req -> (
          (* The server-wide default backend applies only when the
             frame said nothing; an explicit "backend" always wins. *)
          let req =
            if Json.str_field "backend" j = None then
              { req with Protocol.backend = t.cfg.default_backend }
            else req
          in
          match req.Protocol.kind with
          | Protocol.CacheGet | Protocol.CachePut ->
              let resp = cache_response t req in
              Pool.record_outcome metrics req.Protocol.kind
                resp.Protocol.r_status;
              respond_direct conn resp
          | Protocol.FuzzBatch ->
              let resp = fuzz_response t req in
              Pool.record_outcome metrics req.Protocol.kind
                resp.Protocol.r_status;
              respond_direct conn resp
          | Protocol.DocOpen | Protocol.DocChange | Protocol.DocClose
          | Protocol.DocDiagnostics | Protocol.Hover | Protocol.Definition
          | Protocol.Completion ->
              let resp = workspace_response t req in
              Pool.record_outcome metrics req.Protocol.kind
                resp.Protocol.r_status;
              respond_direct conn resp
          | _ ->
          let enqueued_ns = Pool.now_ns () in
          Atomic.incr conn.inflight;
          let job =
            {
              Pool.req;
              enqueued_ns;
              deadline_ns = deadline_of t req ~enqueued_ns;
              respond = respond_inflight conn;
            }
          in
          match req.Protocol.kind with
          | Protocol.Shutdown ->
              (* Shutdown must not be droppable by a full queue: block
                 for space (the drain it triggers frees space fast). *)
              if not (Pool.enqueue_wait t.pool job) then begin
                Atomic.decr conn.inflight;
                Pool.record_outcome metrics req.Protocol.kind
                  Protocol.Shutting_down;
                reject conn req Protocol.Shutting_down "FG0805"
                  "server is already shutting down"
              end
          | _ -> (
              match Pool.try_enqueue t.pool job with
              | `Ok -> ()
              | `Overload ->
                  Atomic.decr conn.inflight;
                  Pool.record_outcome metrics req.Protocol.kind
                    Protocol.Overload;
                  reject conn req Protocol.Overload "FG0802"
                    (Printf.sprintf
                       "server overloaded: request queue is full (%d \
                        pending); retry later"
                       t.cfg.max_queue)
              | `Shutting_down ->
                  Atomic.decr conn.inflight;
                  Pool.record_outcome metrics req.Protocol.kind
                    Protocol.Shutting_down;
                  reject conn req Protocol.Shutting_down "FG0805"
                    "server is shutting down; no new work accepted")))

let reader t conn =
  let dec = Protocol.decoder ~max_frame:t.cfg.max_frame () in
  let rec loop () =
    match Protocol.next_frame dec with
    | `Frame payload ->
        handle_frame t conn payload;
        loop ()
    | `Await ->
        if
          try Protocol.read_chunk dec conn.fd
          with Unix.Unix_error (e, _, _) when ignorable e -> false
        then loop ()
    | `Error msg ->
        (* Framing is unrecoverable: report, then drop the link. *)
        Pool.record_protocol_error (Pool.metrics t.pool);
        respond_direct conn
          {
            Protocol.r_id = 0;
            r_status = Protocol.Protocol_error;
            r_payload =
              Protocol.error_payload ~file:"<frame>" ~code:"FG0806" "%s"
                msg;
          }
  in
  (try loop ()
   with e ->
     logf t "reader error: %s" (Printexc.to_string e));
  mark_eof conn

(* ---------------------------------------------------------------- *)
(* Accept loop and shutdown                                          *)

let accept_one t =
  match Unix.select [ t.listen_fd ] [] [] 0.1 with
  | [], _, _ -> ()
  | _ -> (
      match Unix.accept t.listen_fd with
      | fd, _ ->
          (* Small request/response frames want low latency; unix
             sockets reject the option, which is fine. *)
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          let conn = mk_conn fd in
          Pool.record_connection (Pool.metrics t.pool);
          let th = Thread.create (fun () -> reader t conn) () in
          Mutex.lock t.reg_m;
          t.conns <- conn :: t.conns;
          t.readers <- th :: t.readers;
          Mutex.unlock t.reg_m
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* Assemble and persist the workload profile at drain: instantiation
   and resolution counts come from the process-global collection
   registries (every worker domain recorded into them), the request
   and backend mixes from the pool metrics, cache pressure from the
   summed per-worker unit-cache counters. *)
let write_profile t =
  match t.cfg.profile_out with
  | None -> ()
  | Some path ->
      let requests = Pool.request_mix t.pool in
      let programs =
        List.fold_left
          (fun acc (k, n) ->
            match k with
            | "run" | "check" | "translate" -> acc + n
            | _ -> acc)
          0 requests
      in
      let s = Pool.unit_cache_totals t.pool in
      let unit_cache =
        {
          Profile.c_hits = s.Fg_core.Unit.s_hits;
          c_misses = s.Fg_core.Unit.s_misses;
          c_evictions = s.Fg_core.Unit.s_evictions;
          c_invalidations = s.Fg_core.Unit.s_invalidations;
          c_size = s.Fg_core.Unit.s_size;
          c_capacity = s.Fg_core.Unit.s_capacity;
        }
      in
      Profile.save path
        (Profile.collected ~programs ~unit_cache
           ~backends:(Pool.backend_mix t.pool) ~requests ());
      logf t "profile written to %s" path

let run t =
  (* A SIGPIPE from a vanished client must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  logf t "listening (workers=%d, max_queue=%d)" t.cfg.workers
    t.cfg.max_queue;
  while
    (not (Atomic.get t.stop_requested)) && not (Pool.stopping t.pool)
  do
    accept_one t
  done;
  logf t "draining";
  (* Stop accepting, serve everything admitted, then tear down. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.bound with
  | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | `Tcp _ -> ());
  Pool.initiate_stop t.pool;
  Pool.join t.pool;
  Mutex.lock t.reg_m;
  let conns = t.conns and readers = t.readers in
  Mutex.unlock t.reg_m;
  List.iter force_shutdown conns;
  List.iter Thread.join readers;
  write_profile t;
  logf t "drained; bye"

let serve cfg = run (create cfg)
