lib/systemf/step.mli: Ast Eval Fg_util
