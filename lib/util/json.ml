(** Minimal JSON emission (see the interface).  Writing our own ~60
    lines keeps fg_util dependency-free; the driver only ever emits. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      (* JSON has no NaN/Infinity; clamp to null like most emitters *)
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
      else Buffer.add_string b "null"
  | Str s -> escape_string b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ", ";
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          escape_string b k;
          Buffer.add_string b ": ";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 256 in
  write b t;
  Buffer.contents b

let pp ppf t = Fmt.string ppf (to_string t)
