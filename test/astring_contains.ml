(* Tiny substring helper for error-message assertions in tests; the
   implementation lives in Fg_util.Strutil. *)

let contains = Fg_util.Strutil.contains
