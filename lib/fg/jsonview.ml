(** JSON views of driver results (see the interface).  This is the
    single source of truth for the machine-readable program-result
    shape: [fgc run --format=json] prints {!json_of_run_report}, and
    the [fgc serve] daemon sends the very same rendering as its [run]
    payload, so a served response is byte-identical to a one-shot run
    by construction. *)

open Fg_util
module F = Fg_systemf

let json_of_diags ds = Json.List (List.map Diag.to_json ds)

let rec json_of_flat : Interp.flat -> Json.t = function
  | Interp.FlInt n -> Json.Int n
  | Interp.FlBool b -> Json.Bool b
  | Interp.FlUnit -> Json.Null
  | Interp.FlList vs -> Json.List (List.map json_of_flat vs)
  | Interp.FlTuple vs ->
      Json.Obj [ ("tuple", Json.List (List.map json_of_flat vs)) ]
  | Interp.FlFun -> Json.Str "<fun>"

let json_of_outcome ~file (o : Session.outcome) =
  (* Backend and specialization fields appear only off the Dict
     backend, so the Dict rendering — what every golden test and the
     served-vs-one-shot byte-identity check pin — is unchanged. *)
  let spec_fields =
    match (o.backend, o.spec) with
    | Backend.Dict, _ | _, None -> []
    | b, Some (s : Session.spec) ->
        [
          ("backend", Json.Str (Backend.to_string b));
          ("specialized_steps", Json.Int s.Session.spec_steps);
          ( "stencils",
            Json.Int s.Session.spec_stats.F.Specialize.st_stencils );
          ( "stencils_shared",
            Json.Int s.Session.spec_stats.F.Specialize.st_shared );
        ]
  in
  Json.Obj
    ([ ("file", Json.Str file);
       ("ok", Json.Bool true);
       ("type", Json.Str (Pretty.ty_to_string o.fg_ty));
       ("value", json_of_flat o.value);
       ("value_str", Json.Str (Interp.flat_to_string o.value));
       ("theorem", Json.Bool o.theorem_holds);
       ("direct_steps", Json.Int o.direct_steps);
       ("translated_steps", Json.Int o.translated_steps) ]
    @ spec_fields)

let json_of_failure ~file d =
  Json.Obj
    [ ("file", Json.Str file); ("ok", Json.Bool false);
      ("diagnostics", json_of_diags [ d ]) ]

let json_of_run_report ~file (report : Session.run_report) =
  let fields =
    match report.Session.outcome with
    | Some o -> (
        match json_of_outcome ~file o with
        | Json.Obj fields -> fields
        | j -> [ ("result", j) ])
    | None -> [ ("file", Json.Str file); ("ok", Json.Bool false) ]
  in
  Json.Obj
    (fields @ [ ("diagnostics", json_of_diags report.Session.diagnostics) ])
