test/test_requires.ml: Alcotest Astring_contains Check Fg_core Fg_systemf Fg_util Interp Parser Pipeline Prelude Printf
