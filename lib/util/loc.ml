(** Source locations and spans.

    Every token produced by a lexer carries a {!span}; AST nodes keep the
    span of the syntax they were parsed from so that diagnostics can point
    back into the source.  Programs constructed programmatically (e.g. the
    corpus builders or the random generator) use {!dummy}. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
  offset : int;  (** 0-based byte offset into the source *)
}

type span = { file : string; start_pos : pos; end_pos : pos }

type t = span

let start_pos_of_file = { line = 1; col = 1; offset = 0 }

let dummy =
  { file = "<none>"; start_pos = start_pos_of_file; end_pos = start_pos_of_file }

let is_dummy s = s.file = "<none>"

let make ~file ~start_pos ~end_pos = { file; start_pos; end_pos }

let cmp_pos a b = compare (a.offset, a.line, a.col) (b.offset, b.line, b.col)

(** [merge a b] spans from the earlier start to the later end.  If either
    side is a dummy span the other side wins, so synthesized nodes inherit
    whatever location information is available.  Normalizing (rather than
    blindly taking [a.start]–[b.end]) keeps merged spans well-formed even
    when the parser's resynchronization after an error hands it sides in
    the wrong order. *)
let merge a b =
  if is_dummy a then b
  else if is_dummy b then a
  else
    {
      file = a.file;
      start_pos = (if cmp_pos a.start_pos b.start_pos <= 0
                   then a.start_pos else b.start_pos);
      end_pos = (if cmp_pos a.end_pos b.end_pos >= 0
                 then a.end_pos else b.end_pos);
    }

let is_well_formed s = is_dummy s || cmp_pos s.start_pos s.end_pos <= 0

(* Dummy spans contain nothing and fit anywhere: they mark synthesized
   nodes, which should neither answer position queries nor break the
   nesting invariant for their parents. *)
let contains s ~offset =
  (not (is_dummy s))
  && s.start_pos.offset <= offset
  && offset < max s.end_pos.offset (s.start_pos.offset + 1)

(** [nests ~parent ~child]: the relation every AST child span bears to
    its parent — contained in it, or (for declaration headers, whose
    span stops at their own syntax) starting at/after the parent's end. *)
let nests ~parent ~child =
  is_dummy parent || is_dummy child
  || (cmp_pos parent.start_pos child.start_pos <= 0
      && cmp_pos child.end_pos parent.end_pos <= 0)
  || cmp_pos parent.end_pos child.start_pos <= 0

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col

let pp ppf s =
  if is_dummy s then Fmt.string ppf "<unknown location>"
  else if s.start_pos.line = s.end_pos.line then
    Fmt.pf ppf "%s:%d:%d-%d" s.file s.start_pos.line s.start_pos.col
      s.end_pos.col
  else
    Fmt.pf ppf "%s:%a-%a" s.file pp_pos s.start_pos pp_pos s.end_pos

let to_string s = Fmt.str "%a" pp s
