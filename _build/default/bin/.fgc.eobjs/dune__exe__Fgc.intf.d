bin/fgc.mli:
