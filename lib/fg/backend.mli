(** The translation backends a driver can select.

    Every backend produces System F from the same dictionary-passing
    translation (paper §6); they differ in how much of the dictionary
    machinery survives to run time:

    - {!Dict} — the paper's translation as-is: generics stay
      polymorphic, every call passes dictionaries.
    - {!Stencil} — full stenciling: each ground instantiation of a
      generic is cloned with its types and dictionary witnesses baked
      in (C++-template-style monomorphization, bounded by a budget).
    - {!Hybrid} — gcshape stenciling: instantiations whose dictionary
      layouts agree share one stencil class; the first member of each
      class is cloned, later members keep dictionary passing with
      their dictionaries hoisted and built once.
    - {!Guided} — profile-guided stenciling: only instantiations a
      workload profile ({!Fg_util.Profile}) marks hot are cloned;
      everything cold keeps dictionary passing.  Without a profile it
      degenerates to {!Dict} output.

    All backends are observationally equivalent; the specializing
    backends are re-checked in System F and evaluated against the
    dictionary semantics by the session oracle. *)

type t = Dict | Stencil | Hybrid | Guided

val all : t list

(** ["dict"], ["stencil"], ["hybrid"], ["guided"] — the CLI / wire
    spelling. *)
val to_string : t -> string

val of_string : string -> t option

(** Parse a CLI / wire spelling; unknown names raise the stable
    configuration diagnostic [FG1001] rather than an exception. *)
val of_string_exn : ?loc:Fg_util.Loc.t -> string -> t

(** The specializer mode behind a backend; [None] for {!Dict}. *)
val specialize_mode : t -> Fg_systemf.Specialize.mode option
