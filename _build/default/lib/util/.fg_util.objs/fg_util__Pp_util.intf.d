lib/util/pp_util.mli: Fmt
