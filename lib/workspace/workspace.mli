(** The workspace language service: editor-grade incremental checking
    over open documents.

    A {!t} owns a set of {e open documents} — named, versioned program
    texts an editor is mutating — and keeps each one continuously
    checked.  Opening or changing a document runs the full recovering
    pipeline ({!Fg_core.Session.run_indexed}) through a compilation-unit
    cache shared by every document, so an edit to one declaration
    re-checks only that declaration and its transitive dependents; the
    other declarations replay from cache.  Rendered diagnostics are
    byte-identical to a one-shot [fgc run --format=json] of the same
    text, because both go through
    {!Fg_core.Jsonview.json_of_run_report}.

    Alongside diagnostics the service maintains a {b position index}:
    the inferred type of every expression and every resolved model,
    recorded during checking (via {!Fg_core.Check.with_index_sink}) and
    stored sorted by span for O(log n) offset lookups.  Index fragments
    are cached per compilation unit keyed by the unit's portable key —
    a cache-hit declaration contributes its fragment rebased to its new
    byte offset, so hover keeps working across edits without
    re-checking.  {!hover}, {!definition} and {!completion} answer from
    this index and from a scope-threading walk of the document's AST.

    Every operation is serialized by one internal mutex (document
    updates are cheap next to checking) and records its latency into a
    per-operation histogram, reported by {!stats_json} under the
    server's [stats] payload. *)

open Fg_util

type t

(** [create ()] — an empty workspace.  [fuel] bounds both evaluators of
    every document check (as the daemon's [--fuel] does), so a
    divergent open document reports FG0601 instead of pinning the
    service. *)
val create : ?fuel:int -> unit -> t

(** A service-level failure: [ws_code] is FG0807 (unknown document) or
    FG0808 (stale document version); the payload shape on the wire is
    the standard diagnostics envelope. *)
type ws_error = { ws_code : string; ws_msg : string }

(** A byte-range splice: replace [e_len] bytes at byte offset
    [e_start] with [e_text].  Offsets address the document text {e
    before} any edit of the same change applies; edits are applied in
    list order. *)
type edit = { e_start : int; e_len : int; e_text : string }

(** How a [doc_change] supplies the new text. *)
type change = Full_text of string | Edits of edit list

(** [open_doc t ~name ~version ~prelude ~global_models ~backend text]
    opens (or re-opens, at any version) a document and checks it.
    Returns the rendered diagnostics payload — exactly what
    {!diagnostics} would return. *)
val open_doc :
  t ->
  name:string ->
  version:int ->
  prelude:bool ->
  global_models:bool ->
  backend:Fg_core.Backend.t ->
  string ->
  (string, ws_error) result

(** [change_doc t ~name ~version change] — a new version of an open
    document.  Fails with FG0807 when [name] is not open and FG0808
    unless [version] is strictly greater than the document's current
    version (editors must send monotonically increasing versions).
    Re-checks immediately and returns the new diagnostics payload. *)
val change_doc :
  t -> name:string -> version:int -> change -> (string, ws_error) result

val close_doc : t -> name:string -> (string, ws_error) result

(** The document's current diagnostics (computed at the last
    open/change; no re-check happens here). *)
val diagnostics : t -> name:string -> (string, ws_error) result

(** The inferred type (and resolved model, when the offset sits in a
    constrained call or member access) at a byte offset: the
    smallest-span index entry containing the offset wins; among equal
    spans the last-recorded (outermost in checking order) wins. *)
val hover : t -> name:string -> offset:int -> (string, ws_error) result

(** The defining occurrence of the name under the offset: let/fn/fix
    binders, concept declarations (for members and concept names),
    named models (for [using]), resolved within this document. *)
val definition :
  t -> name:string -> offset:int -> (string, ws_error) result

(** Names completable at the offset — declaration-spine bindings,
    lambda/fix parameters in scope, concepts and their members, named
    models, type aliases — filtered by the identifier prefix ending at
    the offset. *)
val completion :
  t -> name:string -> offset:int -> (string, ws_error) result

(** Open documents right now. *)
val docs_count : t -> int

(** The [{"docs", "open", "change", "close", "diagnostics", "hover",
    "definition", "completion"}] stats object: document count plus one
    latency histogram ({!Fg_util.Telemetry.Histogram.to_json}) per
    operation. *)
val stats_json : t -> Json.t

(** Unit-cache counters of the workspace's shared compilation-unit
    cache (what an edit's re-check cost is measured in). *)
val cache_stats : t -> Fg_core.Unit.stats
