(* An interactive read-eval-print loop for System FG, driven by a
   {!Fg_core.Session}.

   Declarations (concept / model / type alias / let) accumulate by
   extending the session — each is checked once, when committed, and
   never re-checked; expressions run through the full pipeline (check,
   translate, verify, evaluate both ways) against the session's cached
   scope.

   Commands:
     :help              this message
     :quit              leave
     :type EXPR         show the FG type without evaluating
     :translate EXPR    show the System F translation
     :prelude           load the standard prelude into scope
     :show              list the declarations in scope
     :stats             session telemetry (phase times, cache counters)
     :clear             drop all declarations
   Anything else is FG: a declaration (no trailing 'in') or an
   expression.  Multi-line input is supported — the REPL keeps reading
   while the parse is incomplete. *)

module C = Fg_core

type state = {
  mutable session : C.Session.t;
  mutable decls : string list;  (** reversed accumulated declarations *)
  mutable prelude_loaded : bool;
}

let contains = Fg_util.Strutil.contains

(* One shared decl-boundary scanner (lib/syntax/declscan.ml) serves the
   REPL, the recovering parser and the workspace document splitter. *)
let is_decl_start = Fg_syntax.Declscan.is_decl_start

(* A parse failure at end of input means "keep typing" — except the
   one a complete declaration produces (the parser reaching the end
   while expecting the body's [in], which we add ourselves). *)
let incomplete_parse src ~as_decl =
  match Fg_util.Diag.protect (fun () -> C.Parser.exp_of_string src) with
  | Ok _ -> false
  | Error d ->
      d.phase = Fg_util.Diag.Parser
      && contains ~needle:"end of input" d.message
      && not (as_decl && contains ~needle:"expected keyword 'in'" d.message)

let print_error d = Fmt.pr "error: %a@." Fg_util.Diag.pp d

let commit_decl st text =
  (* Extend the session: the new declaration is checked on top of the
     cached scope; on failure the session is unchanged. *)
  match C.Session.extend_result st.session (text ^ " in") with
  | Ok session ->
      st.session <- session;
      st.decls <- (text ^ " in") :: st.decls;
      Fmt.pr "defined.@."
  | Error d -> print_error d

let eval_expr st text =
  (* Recovering pipeline: every independent error (and any warnings)
     prints before the value — or instead of it, when errors exist. *)
  let report = C.Session.run_full ~file:"<repl>" st.session text in
  List.iter
    (fun d -> Fmt.pr "%a@." Fg_util.Diag.pp d)
    report.C.Session.diagnostics;
  match report.C.Session.outcome with
  | Some out ->
      Fmt.pr "- : %a = %a@." C.Pretty.pp_ty out.fg_ty C.Interp.pp_flat
        out.value
  | None -> ()

(* :type / :translate disable the CPT escape check, so generic values
   whose types mention locally declared concepts can be inspected; that
   needs a session configured without the check, built on demand from
   the accumulated scope. *)
let relaxed_session st =
  let prelude =
    match List.rev st.decls with
    | [] -> None
    | ds -> Some (String.concat "\n" ds)
  in
  C.Session.of_config
    C.Session.Config.(
      default |> with_escape_check false |> with_prelude prelude)

let show_type st text =
  match
    Fg_util.Diag.protect (fun () ->
        C.Session.typecheck ~file:"<repl>" (relaxed_session st) text)
  with
  | Ok ty -> Fmt.pr "- : %a@." C.Pretty.pp_ty ty
  | Error d -> print_error d

let show_translation st text =
  match
    Fg_util.Diag.protect (fun () ->
        C.Session.translate ~file:"<repl>" (relaxed_session st) text)
  with
  | Ok f -> Fmt.pr "%a@." Fg_systemf.Pretty.pp_exp f
  | Error d -> print_error d

let load_prelude st =
  if st.prelude_loaded then Fmt.pr "prelude already loaded.@."
  else begin
    (* strip the final newline; each fragment already ends in "in" *)
    let text = String.trim C.Prelude.full in
    match C.Session.extend_result st.session text with
    | Error d -> print_error d
    | Ok session ->
        st.session <- session;
        st.decls <- text :: st.decls;
        st.prelude_loaded <- true;
        Fmt.pr
          "prelude loaded: Eq, Ord, Semigroup, Monoid, Group, Iterator, \
           OutputIterator, Container; models for int/bool/lists; accumulate, \
           count, contains, copy, min_element, equal_ranges, merge, power, \
           ...@."
  end

let show_stats st =
  Fmt.pr "%a@." Fg_util.Telemetry.pp (C.Session.stats st.session);
  Fmt.pr "interned types : %10d@." (C.Session.interned_types st.session)

let help () =
  Fmt.pr
    ":help, :quit, :type EXPR, :translate EXPR, :prelude, :show, :stats, \
     :clear@.\
     declarations (concept/model/type/let, no trailing 'in') accumulate;@.\
     expressions run through the full pipeline.@."

(* Read one logical input (possibly multi-line). *)
let read_input () =
  Fmt.pr "fg> %!";
  match In_channel.input_line stdin with
  | None -> None
  | Some first ->
      let buf = Buffer.create 64 in
      Buffer.add_string buf first;
      let as_decl = is_decl_start (String.trim first) in
      let rec more () =
        let text = Buffer.contents buf in
        if String.trim text = "" then Some text
        else if
          (not (String.length (String.trim text) > 0 && text.[0] = ':'))
          && incomplete_parse text ~as_decl
        then begin
          Fmt.pr "  > %!";
          match In_channel.input_line stdin with
          | None -> Some text
          | Some line ->
              Buffer.add_char buf '\n';
              Buffer.add_string buf line;
              more ()
        end
        else Some text
      in
      more ()

let main () =
  Fmt.pr "System FG interactive (PLDI 2005 reproduction). :help for help.@.";
  let st =
    { session = C.Session.of_config C.Session.Config.default;
      decls = []; prelude_loaded = false }
  in
  let rec loop () =
    match read_input () with
    | None -> Fmt.pr "@."
    | Some raw ->
        let text = String.trim raw in
        (if text = "" then ()
         else if text = ":quit" || text = ":q" then raise Exit
         else if text = ":help" then help ()
         else if text = ":prelude" then load_prelude st
         else if text = ":stats" then show_stats st
         else if text = ":clear" then begin
           st.session <- C.Session.of_config C.Session.Config.default;
           st.decls <- [];
           st.prelude_loaded <- false;
           Fmt.pr "cleared.@."
         end
         else if text = ":show" then
           List.iter (fun d -> Fmt.pr "%s@." d) (List.rev st.decls)
         else if String.length text > 6 && String.sub text 0 6 = ":type " then
           show_type st (String.sub text 6 (String.length text - 6))
         else if
           String.length text > 11 && String.sub text 0 11 = ":translate "
         then show_translation st (String.sub text 11 (String.length text - 11))
         else if text.[0] = ':' then Fmt.pr "unknown command; :help@."
         else if is_decl_start text then commit_decl st text
         else eval_expr st text);
        loop ()
  in
  try loop () with Exit -> ()
