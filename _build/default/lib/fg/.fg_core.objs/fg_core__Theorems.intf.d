lib/fg/theorems.mli: Ast Fg_systemf Fg_util Interp Resolution
