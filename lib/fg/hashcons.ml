(** Hash-consed FG types (see the interface).

    Classic bottom-up interning: children are interned first, then the
    rebuilt node is looked up structurally, so every structurally equal
    type resolves to one physical node and [==] becomes a sound (and
    very frequently true) fast path inside {!Ast.ty_equal}. *)

open Ast

type t = { table : (ty, ty) Hashtbl.t }

let create () = { table = Hashtbl.create 256 }

let rec intern tbl (t : ty) : ty =
  let node =
    match t with
    | TBase _ | TVar _ -> t
    | TArrow (args, ret) ->
        TArrow (List.map (intern tbl) args, intern tbl ret)
    | TTuple ts -> TTuple (List.map (intern tbl) ts)
    | TList t -> TList (intern tbl t)
    | TAssoc (c, args, s) -> TAssoc (c, List.map (intern tbl) args, s)
    | TForall (tvs, constrs, body) ->
        TForall (tvs, List.map (intern_constr tbl) constrs, intern tbl body)
  in
  match Hashtbl.find_opt tbl.table node with
  | Some canonical -> canonical
  | None ->
      Hashtbl.add tbl.table node node;
      node

and intern_constr tbl = function
  | CModel (c, args) -> CModel (c, List.map (intern tbl) args)
  | CSame (a, b) -> CSame (intern tbl a, intern tbl b)

let size tbl = Hashtbl.length tbl.table

(* ---------------------------------------------------------------- *)
(* Expressions: rebuild the spine, sharing the embedded types.        *)

let rec intern_exp tbl (e : exp) : exp =
  let ty = intern tbl and constr = intern_constr tbl in
  let go = intern_exp tbl in
  let desc =
    match e.desc with
    | (Var _ | Lit _ | Prim _) as d -> d
    | App (f, args) -> App (go f, List.map go args)
    | Abs (params, body) ->
        Abs (List.map (fun (x, t) -> (x, ty t)) params, go body)
    | TyAbs (tvs, constrs, body) ->
        TyAbs (tvs, List.map constr constrs, go body)
    | TyApp (f, tys) -> TyApp (go f, List.map ty tys)
    | Let (x, rhs, body) -> Let (x, go rhs, go body)
    | Tuple es -> Tuple (List.map go es)
    | Nth (e0, k) -> Nth (go e0, k)
    | Fix (x, t, body) -> Fix (x, ty t, go body)
    | If (c, t, f) -> If (go c, go t, go f)
    | Member (c, args, x) -> Member (c, List.map ty args, x)
    | ConceptDecl (d, body) ->
        ConceptDecl
          ( {
              d with
              c_refines =
                List.map (fun (c, args) -> (c, List.map ty args)) d.c_refines;
              c_requires =
                List.map (fun (c, args) -> (c, List.map ty args)) d.c_requires;
              c_members = List.map (fun (x, t) -> (x, ty t)) d.c_members;
              c_defaults = List.map (fun (x, e) -> (x, go e)) d.c_defaults;
              c_same = List.map (fun (a, b) -> (ty a, ty b)) d.c_same;
            },
            go body )
    | ModelDecl (d, body) ->
        ModelDecl
          ( {
              d with
              m_constrs = List.map constr d.m_constrs;
              m_args = List.map ty d.m_args;
              m_assoc = List.map (fun (s, t) -> (s, ty t)) d.m_assoc;
              m_members = List.map (fun (x, e) -> (x, go e)) d.m_members;
            },
            go body )
    | Using (m, body) -> Using (m, go body)
    | TypeAlias (t, aliased, body) -> TypeAlias (t, ty aliased, go body)
  in
  { e with desc }
