(** Big-step call-by-value evaluator for System F.

    Environment-based, with backpatching for [fix]: the recursive
    variable is bound to an empty cell while the body (a value form — a
    function, in every program the translation produces) evaluates, and
    the cell is filled with the result.  Forcing the cell before it is
    filled (e.g. [fix (x : int) => x]) is a runtime error, not
    divergence.

    Type abstraction and application are evaluated (not erased): a type
    application forces the body of the type closure, which matches the
    translation's expectation that dictionary abstractions are only
    entered once instantiated.

    A fuel counter bounds the number of beta steps so that the
    property-test drivers can run arbitrary generated programs without
    risking divergence; exhausting fuel raises a diagnostic. *)

open Ast
open Fg_util
module Smap = Names.Smap

type value =
  | VInt of int
  | VBool of bool
  | VUnit
  | VTuple of value list
  | VList of value list
  | VClos of env * (string * ty) list * exp
  | VTyClos of env * string list * exp
  | VPrim of string * int * value list
      (** primitive name, remaining arity, reversed collected args *)

and env = value option ref Smap.t

type state = { mutable fuel : int }

let default_fuel = 10_000_000

let value_kind = function
  | VInt _ -> "int"
  | VBool _ -> "bool"
  | VUnit -> "unit"
  | VTuple _ -> "tuple"
  | VList _ -> "list"
  | VClos _ | VPrim _ -> "function"
  | VTyClos _ -> "type abstraction"

let rec pp_value ppf = function
  | VInt n -> Fmt.int ppf n
  | VBool b -> Fmt.bool ppf b
  | VUnit -> Fmt.string ppf "()"
  | VTuple vs -> Fmt.pf ppf "(@[%a@])" (Pp_util.comma_sep pp_value) vs
  | VList vs -> Fmt.pf ppf "[@[%a@]]" (Pp_util.comma_sep pp_value) vs
  | VClos _ -> Fmt.string ppf "<fun>"
  | VTyClos _ -> Fmt.string ppf "<tyfun>"
  | VPrim (p, _, _) -> Fmt.pf ppf "<prim:%s>" p

let value_to_string v = Pp_util.to_string pp_value v

(** Structural equality on first-order values; functions compare false. *)
let rec value_equal a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VBool x, VBool y -> x = y
  | VUnit, VUnit -> true
  | VTuple xs, VTuple ys | VList xs, VList ys ->
      List.length xs = List.length ys && List.for_all2 value_equal xs ys
  | _ -> false

let spend ?loc st =
  if st.fuel <= 0 then Diag.eval_error ?loc "evaluation fuel exhausted";
  st.fuel <- st.fuel - 1

let bind env x v = Smap.add x (ref (Some v)) env

let lookup ?loc env x =
  match Smap.find_opt x env with
  | Some { contents = Some v } -> v
  | Some { contents = None } ->
      Diag.eval_error ?loc
        "recursive binding '%s' forced before initialization" x
  | None -> Diag.eval_error ?loc "unbound variable '%s' at runtime" x

let int2 ?loc f = function
  | [ VInt a; VInt b ] -> f a b
  | vs ->
      Diag.eval_error ?loc "primitive applied to %s"
        (String.concat ", " (List.map value_kind vs))

let delta ?loc name (args : value list) : value =
  match (name, args) with
  | "iadd", _ -> int2 ?loc (fun a b -> VInt (a + b)) args
  | "isub", _ -> int2 ?loc (fun a b -> VInt (a - b)) args
  | "imult", _ -> int2 ?loc (fun a b -> VInt (a * b)) args
  | "idiv", [ VInt _; VInt 0 ] -> Diag.eval_error ?loc "division by zero"
  | "imod", [ VInt _; VInt 0 ] -> Diag.eval_error ?loc "modulo by zero"
  | "idiv", _ -> int2 ?loc (fun a b -> VInt (a / b)) args
  | "imod", _ -> int2 ?loc (fun a b -> VInt (a mod b)) args
  | "ineg", [ VInt a ] -> VInt (-a)
  | "imin", _ -> int2 ?loc (fun a b -> VInt (min a b)) args
  | "imax", _ -> int2 ?loc (fun a b -> VInt (max a b)) args
  | "ilt", _ -> int2 ?loc (fun a b -> VBool (a < b)) args
  | "ile", _ -> int2 ?loc (fun a b -> VBool (a <= b)) args
  | "igt", _ -> int2 ?loc (fun a b -> VBool (a > b)) args
  | "ige", _ -> int2 ?loc (fun a b -> VBool (a >= b)) args
  | "ieq", _ -> int2 ?loc (fun a b -> VBool (a = b)) args
  | "ineq", _ -> int2 ?loc (fun a b -> VBool (a <> b)) args
  | "band", [ VBool a; VBool b ] -> VBool (a && b)
  | "bor", [ VBool a; VBool b ] -> VBool (a || b)
  | "bnot", [ VBool a ] -> VBool (not a)
  | "beq", [ VBool a; VBool b ] -> VBool (a = b)
  | "cons", [ v; VList vs ] -> VList (v :: vs)
  | "car", [ VList (v :: _) ] -> v
  | "car", [ VList [] ] -> Diag.eval_error ?loc "car of empty list"
  | "cdr", [ VList (_ :: vs) ] -> VList vs
  | "cdr", [ VList [] ] -> Diag.eval_error ?loc "cdr of empty list"
  | "null", [ VList vs ] -> VBool (vs = [])
  | "length", [ VList vs ] -> VInt (List.length vs)
  | "append", [ VList xs; VList ys ] -> VList (xs @ ys)
  | _, _ ->
      Diag.eval_error ?loc "primitive '%s' applied to invalid arguments (%s)"
        name
        (String.concat ", " (List.map value_kind args))

let prim_value ?loc name =
  let info = Prims.lookup_exn ?loc name in
  if name = "nil" then VList [] else VPrim (name, info.arity, [])

let rec apply_value ?loc st fn args =
  match (fn, args) with
  | _, [] -> fn
  | VClos (cenv, params, body), _ ->
      let n = List.length params in
      if List.length args < n then
        Diag.eval_error ?loc
          "function expecting %d argument(s) applied to only %d" n
          (List.length args)
      else begin
        spend ?loc st;
        let now = List.filteri (fun i _ -> i < n) args in
        let rest = List.filteri (fun i _ -> i >= n) args in
        let env' =
          List.fold_left2 (fun acc (x, _) v -> bind acc x v) cenv params now
        in
        apply_value ?loc st (eval st env' body) rest
      end
  | VPrim (name, remaining, collected), _ ->
      let n = List.length args in
      if n < remaining then VPrim (name, remaining - n, List.rev args @ collected)
      else if n = remaining then begin
        spend ?loc st;
        delta ?loc name (List.rev collected @ args)
      end
      else
        Diag.eval_error ?loc "primitive '%s' applied to too many arguments" name
  | v, _ ->
      Diag.eval_error ?loc "application of non-function value (%s)"
        (value_kind v)

and eval (st : state) (env : env) (e : exp) : value =
  let loc = e.loc in
  match e.desc with
  | Var x -> lookup ~loc env x
  | Lit (LInt n) -> VInt n
  | Lit (LBool b) -> VBool b
  | Lit LUnit -> VUnit
  | Prim p -> prim_value ~loc p
  | Abs (params, body) -> VClos (env, params, body)
  | TyAbs (tvs, body) -> VTyClos (env, tvs, body)
  | TyApp (f, _tys) -> (
      match eval st env f with
      | VTyClos (cenv, _, body) ->
          spend ~loc st;
          eval st cenv body
      | VPrim _ as p -> p (* polymorphic primitive: types are erased *)
      | VList [] as v -> v (* nil[t] *)
      | v ->
          Diag.eval_error ~loc "type application of non-polymorphic value (%s)"
            (value_kind v))
  | App (f, args) ->
      let vf = eval st env f in
      let vargs = List.map (eval st env) args in
      apply_value ~loc st vf vargs
  | Let (x, rhs, body) ->
      let v = eval st env rhs in
      eval st (bind env x v) body
  | Tuple es -> VTuple (List.map (eval st env) es)
  | Nth (e0, k) -> (
      match eval st env e0 with
      | VTuple vs when k >= 0 && k < List.length vs -> List.nth vs k
      | VTuple vs ->
          Diag.eval_error ~loc "projection %d out of bounds for %d-tuple" k
            (List.length vs)
      | v -> Diag.eval_error ~loc "nth of non-tuple value (%s)" (value_kind v))
  | Fix (x, _, body) ->
      spend ~loc st;
      let cell = ref None in
      let env' = Smap.add x cell env in
      let v = eval st env' body in
      cell := Some v;
      v
  | If (c, t, f) -> (
      match eval st env c with
      | VBool true -> eval st env t
      | VBool false -> eval st env f
      | v ->
          Diag.eval_error ~loc "if condition evaluated to non-bool (%s)"
            (value_kind v))

(** Evaluate a closed program. *)
let run ?(fuel = default_fuel) e =
  let st = { fuel } in
  let v = eval st Smap.empty e in
  (v, fuel - st.fuel)

let run_value ?fuel e = fst (run ?fuel e)

let run_result ?fuel e = Diag.protect (fun () -> run ?fuel e)
