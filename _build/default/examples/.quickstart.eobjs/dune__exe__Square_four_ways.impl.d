examples/square_four_ways.ml: Fg_core Fg_systemf Fmt
