lib/fg/types.mli: Ast Env Fg_systemf Fg_util
