test/test_env.ml: Alcotest Ast Astring_contains Env Fg_core Fg_util List Parser Pretty
