(* The workspace language service.

   The contract under test: (1) an edit re-checks exactly the dirty
   declaration plus its transitive dependents — unit-cache miss counts
   are asserted, not estimated; (2) warm diagnostics are byte-identical
   to a cold open of the final text, for hand-written edit scripts, for
   qcheck-generated arbitrary splice sequences, and for the whole
   corpus against a fresh session; (3) the service errors (FG0807
   unknown document, FG0808 stale version) and the stats JSON shape are
   stable; (4) hover / definition / completion answer from the position
   index. *)

open Fg_util
open Fg_core
module W = Fg_workspace.Workspace

let dict = Backend.Dict

let open_doc ?(prelude = false) ws ~name ~version text =
  W.open_doc ws ~name ~version ~prelude ~global_models:false ~backend:dict
    text

let ok = function
  | Ok payload -> payload
  | Error e -> Alcotest.failf "workspace error %s: %s" e.W.ws_code e.W.ws_msg

let err = function
  | Ok _ -> Alcotest.fail "expected a workspace error"
  | Error (e : W.ws_error) -> e.W.ws_code

(* The same clamped-splice semantics as Workspace.apply_edits, for
   computing expected final texts in tests. *)
let splice text (start, len, ins) =
  let n = String.length text in
  let s = max 0 (min start n) in
  let e = max s (min (s + len) n) in
  String.sub text 0 s ^ ins ^ String.sub text e (n - e)

(* ------------------------------------------------------------------ *)
(* Incremental re-checking: exact unit-cache miss counts               *)

let program_3decls =
  "let a = 1 in\nlet b = 2 in\nlet c = a + 3 in\na + b + c"

let test_edit_misses_only_dirty_decl () =
  let ws = W.create () in
  ignore (ok (open_doc ws ~name:"t.fg" ~version:1 program_3decls));
  let before = (W.cache_stats ws).Unit.s_misses in
  (* mutate the independent declaration [b]: same byte count, same
     line/column geometry, no dependents *)
  let off = String.index_from program_3decls 0 '2' in
  ignore
    (ok
       (W.change_doc ws ~name:"t.fg" ~version:2
          (W.Edits [ { W.e_start = off; e_len = 1; e_text = "7" } ])));
  let after = (W.cache_stats ws).Unit.s_misses in
  Alcotest.(check int) "only b re-checked" 1 (after - before)

let test_edit_misses_decl_and_dependents () =
  let ws = W.create () in
  ignore (ok (open_doc ws ~name:"t.fg" ~version:1 program_3decls));
  let before = (W.cache_stats ws).Unit.s_misses in
  (* mutate [a]: [c] uses [a], so exactly a and c re-check; b replays *)
  let off = String.index_from program_3decls 0 '1' in
  ignore
    (ok
       (W.change_doc ws ~name:"t.fg" ~version:2
          (W.Edits [ { W.e_start = off; e_len = 1; e_text = "5" } ])));
  let after = (W.cache_stats ws).Unit.s_misses in
  Alcotest.(check int) "a and its dependent c re-checked" 2
    (after - before)

(* ------------------------------------------------------------------ *)
(* Warm = cold byte identity                                           *)

let test_edit_then_revert_matches_cold () =
  let ws = W.create () in
  let cold0 = ok (open_doc ws ~name:"t.fg" ~version:1 program_3decls) in
  let off = String.index_from program_3decls 0 '3' in
  let edited =
    ok
      (W.change_doc ws ~name:"t.fg" ~version:2
         (W.Edits [ { W.e_start = off; e_len = 1; e_text = "9" } ]))
  in
  let cold_ws = W.create () in
  let cold_edited =
    ok
      (open_doc cold_ws ~name:"t.fg" ~version:1
         (splice program_3decls (off, 1, "9")))
  in
  Alcotest.(check string) "edited warm = cold" cold_edited edited;
  let reverted =
    ok
      (W.change_doc ws ~name:"t.fg" ~version:3
         (W.Edits [ { W.e_start = off; e_len = 1; e_text = "3" } ]))
  in
  Alcotest.(check string) "revert = original open" cold0 reverted;
  Alcotest.(check string)
    "diagnostics returns the same payload" reverted
    (ok (W.diagnostics ws ~name:"t.fg"))

(* qcheck: arbitrary splice sequences — including ones that break the
   program — leave warm diagnostics byte-identical to a cold open of
   the final text. *)
let splice_gen =
  QCheck.Gen.(
    triple (int_bound 80) (int_bound 8)
      (string_size ~gen:(oneofl [ '1'; 'x'; '+'; ' '; '('; 'l' ]) (int_bound 4)))

let prop_random_edits_match_cold =
  QCheck.Test.make ~name:"random doc_change sequences = cold open"
    ~count:60
    (QCheck.make
       ~print:(fun es ->
         String.concat ";"
           (List.map (fun (s, l, t) -> Printf.sprintf "(%d,%d,%S)" s l t) es))
       QCheck.Gen.(list_size (int_range 1 6) splice_gen))
    (fun edits ->
      let ws = W.create () in
      ignore (ok (open_doc ws ~name:"q.fg" ~version:1 program_3decls));
      let version = ref 1 in
      let warm =
        List.fold_left
          (fun _ (s, l, t) ->
            incr version;
            ok
              (W.change_doc ws ~name:"q.fg" ~version:!version
                 (W.Edits [ { W.e_start = s; e_len = l; e_text = t } ])))
          "" edits
      in
      let final_text = List.fold_left splice program_3decls edits in
      let cold = W.create () in
      let cold_payload =
        ok (open_doc cold ~name:"q.fg" ~version:1 final_text)
      in
      warm = cold_payload)

(* Whole corpus: a workspace open must render byte-identically to the
   plain recovering driver (the same bytes `fgc run --format=json`
   prints). *)
let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_corpus_matches_driver () =
  let ws = W.create () in
  let files =
    Sys.readdir "../programs" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".fg")
    |> List.sort String.compare
  in
  List.iteri
    (fun i f ->
      let path = Filename.concat "../programs" f in
      let text = read_file path in
      let from_ws =
        ok (open_doc ws ~prelude:true ~name:path ~version:(i + 1) text)
      in
      let s =
        Session.of_config
          Session.Config.(default |> with_standard_prelude)
      in
      let report = Session.run_full ~file:path s text in
      let oneshot =
        Json.to_string (Jsonview.json_of_run_report ~file:path report)
      in
      Alcotest.(check string) (path ^ ": ws = driver") oneshot from_ws)
    files

(* ------------------------------------------------------------------ *)
(* Service errors                                                      *)

let test_unknown_and_stale () =
  let ws = W.create () in
  Alcotest.(check string)
    "change unknown" "FG0807"
    (err
       (W.change_doc ws ~name:"nope.fg" ~version:1 (W.Full_text "1")));
  Alcotest.(check string)
    "hover unknown" "FG0807"
    (err (W.hover ws ~name:"nope.fg" ~offset:0));
  ignore (ok (open_doc ws ~name:"s.fg" ~version:5 "1 + 2"));
  Alcotest.(check string)
    "same version stale" "FG0808"
    (err (W.change_doc ws ~name:"s.fg" ~version:5 (W.Full_text "2")));
  Alcotest.(check string)
    "older version stale" "FG0808"
    (err (W.change_doc ws ~name:"s.fg" ~version:4 (W.Full_text "2")));
  ignore (ok (W.change_doc ws ~name:"s.fg" ~version:6 (W.Full_text "2")));
  ignore (ok (W.close_doc ws ~name:"s.fg"));
  Alcotest.(check string)
    "closed is unknown" "FG0807"
    (err (W.diagnostics ws ~name:"s.fg"))

(* ------------------------------------------------------------------ *)
(* Hover / definition / completion                                     *)

let hover_program =
  "concept Number<u> { mult : fn(u, u) -> u; } in\n\
   let square = tfun t where Number<t> => fun (x : t) => \
   Number<t>.mult(x, x) in\n\
   model Number<int> { mult = imult; } in\n\
   square[int](4)"

let index_of_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then Alcotest.failf "substring %S not found" needle
    else if String.sub haystack i nn = needle then i
    else go (i + 1)
  in
  go 0

let field payload name =
  match Json.of_string payload with
  | Ok j -> Json.mem name j
  | Error e -> Alcotest.failf "bad payload JSON: %s" e

let test_hover_types_and_models () =
  let ws = W.create () in
  ignore (ok (open_doc ws ~name:"h.fg" ~version:1 hover_program));
  (* on Number<t>.mult in square's body *)
  let off = 47 + String.length "let square = tfun t where Number<t> => fun (x : t) => " in
  let payload = ok (W.hover ws ~name:"h.fg" ~offset:off) in
  (match field payload "type" with
  | Some (Json.Str ty) ->
      Alcotest.(check string) "member type" "fn(t, t) -> t" ty
  | _ -> Alcotest.failf "no type in hover payload: %s" payload);
  (match field payload "model" with
  | Some m -> (
      match Json.str_field "concept" m with
      | Some c -> Alcotest.(check string) "resolved concept" "Number" c
      | None -> Alcotest.fail "model without concept")
  | None -> Alcotest.failf "no model in hover payload: %s" payload);
  (* the literal 4 in the final application *)
  let lit_off = String.length hover_program - 2 in
  let payload = ok (W.hover ws ~name:"h.fg" ~offset:lit_off) in
  match field payload "type" with
  | Some (Json.Str ty) -> Alcotest.(check string) "literal type" "int" ty
  | _ -> Alcotest.failf "no type at literal: %s" payload

let test_hover_survives_edit_of_other_decl () =
  (* After editing a different declaration, hover inside the cache-hit
     declaration still answers (the index fragment is replayed). *)
  let ws = W.create () in
  ignore (ok (open_doc ws ~name:"h.fg" ~version:1 hover_program));
  let four = String.length hover_program - 2 in
  ignore
    (ok
       (W.change_doc ws ~name:"h.fg" ~version:2
          (W.Edits [ { W.e_start = four; e_len = 1; e_text = "5" } ])));
  let off = 47 + String.length "let square = tfun t where Number<t> => fun (x : t) => " in
  let payload = ok (W.hover ws ~name:"h.fg" ~offset:off) in
  match field payload "type" with
  | Some (Json.Str ty) ->
      Alcotest.(check string) "member type after edit" "fn(t, t) -> t" ty
  | _ -> Alcotest.failf "hover lost after unrelated edit: %s" payload

let test_definition () =
  let ws = W.create () in
  ignore (ok (open_doc ws ~name:"d.fg" ~version:1 hover_program));
  (* Number<t>.mult resolves to the concept declaration on line 1 *)
  let off = 47 + String.length "let square = tfun t where Number<t> => fun (x : t) => " in
  let payload = ok (W.definition ws ~name:"d.fg" ~offset:off) in
  (match field payload "name" with
  | Some (Json.Str n) -> Alcotest.(check string) "member def" "Number.mult" n
  | _ -> Alcotest.failf "no definition: %s" payload);
  (* the use of square on the last line resolves to its let *)
  let use = index_of_sub hover_program "square[int]" in
  let payload = ok (W.definition ws ~name:"d.fg" ~offset:use) in
  match field payload "name" with
  | Some (Json.Str n) -> Alcotest.(check string) "let def" "square" n
  | _ -> Alcotest.failf "no definition for square use: %s" payload

let test_completion () =
  let ws = W.create () in
  ignore (ok (open_doc ws ~name:"c.fg" ~version:1 hover_program));
  (* at the end of the document: square, Number, mult all in scope *)
  let payload =
    ok
      (W.completion ws ~name:"c.fg"
         ~offset:(String.length hover_program))
  in
  let labels =
    match field payload "items" with
    | Some (Json.List items) ->
        List.filter_map
          (fun i ->
            match Json.str_field "label" i with Some l -> Some l | None -> None)
          items
    | _ -> []
  in
  Alcotest.(check bool) "square" true (List.mem "square" labels);
  Alcotest.(check bool) "Number" true (List.mem "Number" labels);
  Alcotest.(check bool) "mult member" true (List.mem "mult" labels)

(* ------------------------------------------------------------------ *)
(* Stats shape                                                         *)

let test_stats_shape () =
  let ws = W.create () in
  ignore (ok (open_doc ws ~name:"s.fg" ~version:1 "1 + 2"));
  ignore (ok (W.hover ws ~name:"s.fg" ~offset:0));
  match W.stats_json ws with
  | Json.Obj fields ->
      Alcotest.(check (list string))
        "stats keys"
        [ "change"; "close"; "completion"; "definition"; "diagnostics";
          "docs"; "hover"; "open" ]
        (List.map fst fields);
      (match List.assoc "docs" fields with
      | Json.Int n -> Alcotest.(check int) "docs" 1 n
      | _ -> Alcotest.fail "docs is not an int");
      List.iter
        (fun k ->
          match List.assoc k fields with
          | Json.Obj h ->
              Alcotest.(check (list string))
                (k ^ " histogram keys")
                [ "count"; "max_ms"; "mean_ms"; "p50_ms"; "p95_ms";
                  "p99_ms" ]
                (List.map fst h)
          | _ -> Alcotest.failf "%s is not a histogram object" k)
        [ "open"; "change"; "close"; "diagnostics"; "hover"; "definition";
          "completion" ]
  | _ -> Alcotest.fail "stats_json is not an object"

let suite =
  [
    Alcotest.test_case "edit re-checks only the dirty decl" `Quick
      test_edit_misses_only_dirty_decl;
    Alcotest.test_case "edit re-checks decl + transitive dependents"
      `Quick test_edit_misses_decl_and_dependents;
    Alcotest.test_case "edit then revert = cold open bytes" `Quick
      test_edit_then_revert_matches_cold;
    QCheck_alcotest.to_alcotest prop_random_edits_match_cold;
    Alcotest.test_case "corpus: workspace = driver bytes" `Slow
      test_corpus_matches_driver;
    Alcotest.test_case "FG0807 / FG0808 service errors" `Quick
      test_unknown_and_stale;
    Alcotest.test_case "hover: types and resolved models" `Quick
      test_hover_types_and_models;
    Alcotest.test_case "hover survives edits of other decls" `Quick
      test_hover_survives_edit_of_other_decl;
    Alcotest.test_case "definition: members and lets" `Quick
      test_definition;
    Alcotest.test_case "completion: decls, concepts, members" `Quick
      test_completion;
    Alcotest.test_case "stats JSON shape" `Quick test_stats_shape;
  ]
