(** A splittable, purely functional pseudo-random number generator
    (SplitMix64), used by the fuzzing subsystem.

    Unlike [Stdlib.Random] there is no global state: a {!t} is an
    immutable value, every operation returns the advanced generator
    alongside its sample, and {!split} derives two statistically
    independent streams.  The whole stream — and therefore every fuzz
    run — is reproducible from a single [int] seed, regardless of
    evaluation order or how many domains consume sibling streams. *)

type t

(** [make seed] — a generator deterministically derived from [seed]. *)
val make : int -> t

(** [split t] is [(l, r)]: two generators whose future outputs are
    independent of each other and of [t]'s past. *)
val split : t -> t * t

(** [split_nth t i] — the [i]-th sibling stream of [t] ([i >= 0]),
    independent for distinct [i]; how each fuzz case gets its own
    generator without threading state through its neighbours. *)
val split_nth : t -> int -> t

(** [bits t] — 64 fresh bits and the advanced generator. *)
val bits : t -> int64 * t

(** [int t n] — a uniform sample in [\[0, n)] ([n > 0]) and the
    advanced generator. *)
val int : t -> int -> int * t

(** [in_range t lo hi] — a uniform sample in [\[lo, hi\]] (inclusive,
    [lo <= hi]). *)
val in_range : t -> int -> int -> int * t

val bool : t -> bool * t

(** [chance t p] is true with probability [p] (clamped to [0, 1]). *)
val chance : t -> float -> bool * t

(** [choose t xs] — a uniform element of the non-empty list [xs].
    Raises [Invalid_argument] on an empty list. *)
val choose : t -> 'a list -> 'a * t

(** [weighted t xs] — an element of the non-empty list [xs] drawn with
    probability proportional to its non-negative weight.  Raises
    [Invalid_argument] when the weights sum to zero or [xs] is empty. *)
val weighted : t -> (int * 'a) list -> 'a * t

(** [shuffle t xs] — a uniform permutation of [xs] (Fisher–Yates). *)
val shuffle : t -> 'a list -> 'a list * t
