(** Bounded request queue + worker-domain pool for the daemon.

    Each worker is an OCaml 5 domain owning a {!Handler.t} (warm
    sessions included).  The queue is strictly bounded: {!try_enqueue}
    never blocks and never buffers past the capacity — callers turn a
    full queue into an explicit overload response.  Deadlines are
    enforced at the pool: a job that expires while queued is rejected
    without running, and a job whose work completes after its deadline
    is reported as a timeout anyway (the result is discarded).

    Shutdown is a drain: once {!initiate_stop} runs (directly, from a
    signal, or via a [shutdown] request processed in FIFO order),
    nothing new is admitted, queued jobs are still served, and workers
    exit when the queue is empty. *)

open Fg_util

val now_ns : unit -> int

(** {1 Metrics} *)

type metrics

val metrics_to_json : ?extra:(string * Json.t) list -> metrics -> Json.t
val record_protocol_error : metrics -> unit
val record_connection : metrics -> unit

(** Count a served request against its translation backend (the
    [stats] payload's ["backends"] object). *)
val record_backend : metrics -> Fg_core.Backend.t -> unit

(** Count a response in the kind × status grid — workers do this for
    everything they serve; the server's reader threads do it for
    responses that never reach a worker (overload, shutting-down). *)
val record_outcome : metrics -> Protocol.kind -> Protocol.status -> unit

(** {1 Jobs} *)

type job = {
  req : Protocol.request;
  enqueued_ns : int;  (** {!now_ns} at admission *)
  deadline_ns : int option;  (** absolute; [None] = no deadline *)
  respond : Protocol.response -> unit;
      (** invoked exactly once, from a worker domain; must be safe to
          call after the originating connection closed *)
}

(** {1 The pool} *)

type t

(** [stats_json] renders the [stats] payload from the live metrics
    (the server adds its own config fields via [?extra]).  [disk],
    [peers], [unit_cache_capacity] and [profile] are handed to every
    worker's {!Handler.create}: one shared on-disk unit store, one set
    of cache peers, one (possibly auto-sized) unit-cache bound, and
    one default workload profile per daemon. *)
val create :
  ?fuel:int -> ?disk:Fg_core.Diskcache.t ->
  ?peers:(string * Protocol.address) list -> ?unit_cache_capacity:int ->
  ?profile:Profile.t -> capacity:int ->
  stats_json:(metrics -> Json.t) -> unit -> t

val metrics : t -> metrics
val stats_payload : t -> string

(** {1 Profile material}

    What the server needs to assemble a workload profile at drain:
    positive-count maps in {!Shardcounter.map} shape and the summed
    unit-cache counters across every worker.  All safe to read while
    workers run. *)

(** Requests served per translation backend, by backend name. *)
val backend_mix : t -> Shardcounter.map

(** Requests admitted per wire kind (all statuses summed), by kind
    name. *)
val request_mix : t -> Shardcounter.map

(** Unit-cache counters summed across every worker's handler; capacity
    is the per-worker bound (they all share one configuration). *)
val unit_cache_totals : t -> Fg_core.Unit.stats

(** Spawn the worker domains. *)
val start : workers:int -> t -> unit

(** Non-blocking admission. *)
val try_enqueue : t -> job -> [ `Ok | `Overload | `Shutting_down ]

(** Blocking admission (used for shutdown sentinels, which must not be
    dropped just because the queue is momentarily full); [false] if
    the pool began stopping while waiting. *)
val enqueue_wait : t -> job -> bool

val stopping : t -> bool

(** Begin the drain (idempotent). *)
val initiate_stop : t -> unit

(** Wait for every worker to finish the drain and exit. *)
val join : t -> unit
