(** Catalogue of primitive constants shared by System F and System FG:
    integer arithmetic/comparison, booleans, and list operations
    ([cons], [car], [cdr], [null], [nil], [length], [append]) — the
    ambient constants the paper's example programs assume. *)

type info = {
  name : string;
  ty : Ast.ty;  (** closed (possibly polymorphic) type scheme *)
  arity : int;  (** term arity after type instantiation; 0 for [nil] *)
}

val table : info list
val lookup : string -> info option
val lookup_exn : ?loc:Fg_util.Loc.t -> string -> info
val is_prim : string -> bool
