lib/systemf/ast.ml: Fg_util List Loc Names String
