lib/fg/gen.ml: Array Ast Fg_util Fun List Pretty Printf Random
