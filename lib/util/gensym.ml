(** Fresh-name generation.

    The translation from FG to System F introduces dictionary variables
    ([Monoid_18]), extra type parameters for associated types ([elt_4])
    and representative names.  A {!t} is an explicit supply so that
    independent pipeline runs are deterministic and reproducible: the
    paper's examples show names like [Semigroup_61] whose exact digits
    are immaterial, but tests rely on two runs over the same program
    producing identical output. *)

type t = { mutable next : int }

let create () = { next = 0 }

let reset g = g.next <- 0

(** [mark g] captures the supply position so a later {!restore} can
    replay from it — how a {!Session} gives every program checked
    against a shared prelude the same fresh names a standalone run
    would produce. *)
let mark g = g.next

let restore g n = g.next <- n

(** [fresh g base] returns ["base_N"] for the next counter value [N]. *)
let fresh g base =
  let n = g.next in
  g.next <- n + 1;
  Printf.sprintf "%s_%d" base n

(** [fresh_many g base k] returns [k] distinct names sharing [base]. *)
let fresh_many g base k = List.init k (fun _ -> fresh g base)
