lib/fg/interp.mli: Ast Fg_systemf Fg_util Fmt
