(* fgc: the System FG command-line driver.

   Subcommands:
     check      type check a program, print its FG type
     translate  print the System F translation (optionally its type)
     run        run the full pipeline and print the value
     verify     check the translation-preserves-typing theorem
     batch      run many programs through the pipeline, in parallel
     corpus     list or run the built-in paper corpus
     eq         decide a same-type query under assumptions

   All program-driving subcommands go through a {!Fg_core.Session}:
   with [--prelude] the standard prelude is checked once per session
   (not per program), and [--stats] reports the phase timers and cache
   counters the session accumulated.  Programs are read from a file
   argument or from stdin ("-"). *)

open Cmdliner
module C = Fg_core
module F = Fg_systemf
module Diag = Fg_util.Diag
module Telemetry = Fg_util.Telemetry
module Json = Fg_util.Json

let read_input = function
  | "-" ->
      let b = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel b stdin 4096
         done
       with End_of_file -> ());
      ("<stdin>", Buffer.contents b)
  | path -> (
      match open_in_bin path with
      | exception Sys_error msg -> Diag.error Diag.Parser "cannot read %s" msg
      | ic ->
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          (path, s))

(* ---------------------------------------------------------------- *)
(* JSON views                                                        *)

let json_of_diags ds = Json.List (List.map Diag.to_json ds)

let rec json_of_flat : C.Interp.flat -> Json.t = function
  | C.Interp.FlInt n -> Json.Int n
  | C.Interp.FlBool b -> Json.Bool b
  | C.Interp.FlUnit -> Json.Null
  | C.Interp.FlList vs -> Json.List (List.map json_of_flat vs)
  | C.Interp.FlTuple vs ->
      Json.Obj [ ("tuple", Json.List (List.map json_of_flat vs)) ]
  | C.Interp.FlFun -> Json.Str "<fun>"

let json_of_outcome ~file (o : C.Session.outcome) =
  Json.Obj
    [ ("file", Json.Str file);
      ("ok", Json.Bool true);
      ("type", Json.Str (C.Pretty.ty_to_string o.fg_ty));
      ("value", json_of_flat o.value);
      ("value_str", Json.Str (C.Interp.flat_to_string o.value));
      ("theorem", Json.Bool o.theorem_holds);
      ("direct_steps", Json.Int o.direct_steps);
      ("translated_steps", Json.Int o.translated_steps) ]

let json_of_failure ~file d =
  Json.Obj
    [ ("file", Json.Str file); ("ok", Json.Bool false);
      ("diagnostics", json_of_diags [ d ]) ]

let print_json j = print_endline (Json.to_string j)

(* ---------------------------------------------------------------- *)
(* Common arguments                                                  *)

(* Run a command body that reports its own exit code; on a diagnostic
   print it (as JSON when asked) and exit non-zero.  With [--stats],
   the telemetry accumulated by the command — timers and cache counters
   included — goes to stderr either way. *)
let handle_code ?(json = false) ?(stats = false) f =
  let before = Telemetry.snapshot () in
  let finish code =
    if stats then
      Fmt.epr "%a@." Telemetry.pp
        (Telemetry.diff (Telemetry.snapshot ()) before);
    code
  in
  match f () with
  | code -> finish code
  | exception Diag.Error d ->
      if json then
        print_json (Json.Obj [ ("ok", Json.Bool false);
                               ("diagnostics", json_of_diags [ d ]) ])
      else Fmt.epr "%a@." Diag.pp d;
      finish 1

let handle ?json ?stats f = handle_code ?json ?stats (fun () -> f (); 0)

let expr_arg =
  let doc = "Give the program inline instead of reading a file." in
  Arg.(value & opt (some string) None & info [ "e"; "expr" ] ~docv:"SRC" ~doc)

let global_flag =
  let doc =
    "Use global (Haskell-style) model resolution: overlapping models \
     anywhere in the program are rejected.  The default is the paper's \
     lexically scoped resolution."
  in
  Arg.(value & flag & info [ "global-models" ] ~doc)

let resolution_of_flag g =
  if g then C.Resolution.Global else C.Resolution.Lexical

let with_prelude_flag =
  let doc = "Check the program under the standard prelude (concepts, \
             models for int/bool/list int, and the generic algorithms), \
             cached in the session and checked only once." in
  Arg.(value & flag & info [ "p"; "prelude" ] ~doc)

let stats_flag =
  let doc = "Report phase wall times and cache counters (prelude reuse, \
             model-resolution hits, congruence rebuilds) on stderr." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let format_arg =
  let doc = "Output format: $(b,text) (default) or $(b,json)." in
  Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
       & info [ "format" ] ~docv:"FMT" ~doc)

(* The session every subcommand drives: prelude cached at creation when
   requested, so per-program work excludes it. *)
let make_session ~global ~with_prelude =
  let resolution = resolution_of_flag global in
  if with_prelude then C.Session.with_prelude ~resolution ()
  else C.Session.create ~resolution ()

let get_source file expr =
  match expr with Some s -> ("<expr>", s) | None -> read_input file

let file_pos_arg =
  Arg.(value & pos 0 string "-" & info [] ~docv:"FILE"
         ~doc:"Input program file ('-' for stdin).")

(* ---------------------------------------------------------------- *)
(* check                                                             *)

let check_cmd =
  let run file expr global with_prelude stats =
    handle ~stats (fun () ->
        let name, src = get_source file expr in
        let s = make_session ~global ~with_prelude in
        Fmt.pr "%a@." C.Pretty.pp_ty (C.Session.typecheck ~file:name s src))
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Type check an FG program and print its type")
    Term.(const run $ file_pos_arg $ expr_arg $ global_flag
          $ with_prelude_flag $ stats_flag)

(* ---------------------------------------------------------------- *)
(* translate                                                         *)

let translate_cmd =
  let run file expr global with_prelude show_type stats =
    handle ~stats (fun () ->
        let name, src = get_source file expr in
        let s = make_session ~global ~with_prelude in
        let f = C.Session.translate ~file:name s src in
        Fmt.pr "%a@." F.Pretty.pp_exp f;
        if show_type then
          Fmt.pr "// : %a@." F.Pretty.pp_ty (F.Typecheck.typecheck f))
  in
  let show_type =
    Arg.(value & flag
         & info [ "t"; "type" ] ~doc:"Also print the System F type.")
  in
  Cmd.v
    (Cmd.info "translate"
       ~doc:"Translate an FG program to System F (dictionary passing)")
    Term.(
      const run $ file_pos_arg $ expr_arg $ global_flag $ with_prelude_flag
      $ show_type $ stats_flag)

(* ---------------------------------------------------------------- *)
(* run                                                               *)

let run_cmd =
  let run file expr global with_prelude verbose format stats =
    handle_code ~json:(format = `Json) ~stats (fun () ->
        let name, src = get_source file expr in
        let s = make_session ~global ~with_prelude in
        (* The recovering pipeline: every independent error in the
           program comes back in one invocation, plus any warnings. *)
        let report = C.Session.run_full ~file:name s src in
        let diags = report.C.Session.diagnostics in
        (match format with
        | `Json ->
            let fields =
              match report.C.Session.outcome with
              | Some o -> (
                  match json_of_outcome ~file:name o with
                  | Json.Obj fields -> fields
                  | j -> [ ("result", j) ])
              | None -> [ ("file", Json.Str name); ("ok", Json.Bool false) ]
            in
            print_json
              (Json.Obj (fields @ [ ("diagnostics", json_of_diags diags) ]))
        | `Text -> (
            List.iter (fun d -> Fmt.epr "%a@." Diag.pp d) diags;
            match report.C.Session.outcome with
            | None -> ()
            | Some out ->
                if verbose then begin
                  Fmt.pr "type        : %a@." C.Pretty.pp_ty out.fg_ty;
                  Fmt.pr "value       : %a@." C.Interp.pp_flat out.value;
                  Fmt.pr "direct steps: %d@." out.direct_steps;
                  Fmt.pr "trans steps : %d@." out.translated_steps;
                  Fmt.pr "theorem     : %s@."
                    (if out.theorem_holds then "holds" else "VIOLATED")
                end
                else Fmt.pr "%a@." C.Interp.pp_flat out.value));
        match report.C.Session.outcome with Some _ -> 0 | None -> 1)
  in
  let verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ]
             ~doc:"Print the type, step counts and theorem status too.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the full pipeline: check, translate, verify the theorem, \
          evaluate both directly and via the translation, and print the \
          (agreeing) value")
    Term.(
      const run $ file_pos_arg $ expr_arg $ global_flag $ with_prelude_flag
      $ verbose $ format_arg $ stats_flag)

(* ---------------------------------------------------------------- *)
(* elaborate                                                         *)

let elaborate_cmd =
  let run file expr global with_prelude stats =
    handle ~stats (fun () ->
        let name, src = get_source file expr in
        let s = make_session ~global ~with_prelude in
        let _, elaborated, _ = C.Session.elaborate ~file:name s src in
        Fmt.pr "%a@." C.Pretty.pp_exp elaborated)
  in
  Cmd.v
    (Cmd.info "elaborate"
       ~doc:
         "Print the elaborated FG program (implicit instantiations made \
          explicit, member defaults filled in)")
    Term.(const run $ file_pos_arg $ expr_arg $ global_flag
          $ with_prelude_flag $ stats_flag)

(* ---------------------------------------------------------------- *)
(* verify                                                            *)

let verify_cmd =
  let run file expr global with_prelude format stats =
    handle ~json:(format = `Json) ~stats (fun () ->
        let name, src = get_source file expr in
        let s = make_session ~global ~with_prelude in
        let report = C.Session.verify ~file:name s src in
        match format with
        | `Json ->
            print_json
              (Json.Obj
                 [ ("file", Json.Str name);
                   ("ok", Json.Bool true);
                   ("fg_type",
                    Json.Str (C.Pretty.ty_to_string report.fg_ty));
                   ("translated_type",
                    Json.Str (F.Pretty.ty_to_string report.expected_f_ty));
                   ("systemf_type",
                    Json.Str (F.Pretty.ty_to_string report.f_ty));
                   ("theorem", Json.Bool true) ])
        | `Text ->
            Fmt.pr "FG type          : %a@." C.Pretty.pp_ty report.fg_ty;
            Fmt.pr "translated type  : %a@." F.Pretty.pp_ty
              report.expected_f_ty;
            Fmt.pr "System F assigns : %a@." F.Pretty.pp_ty report.f_ty;
            Fmt.pr "theorem          : holds@.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check the paper's Theorems 1/2 on this program: the translation \
          type checks in System F at the translated type")
    Term.(const run $ file_pos_arg $ expr_arg $ global_flag
          $ with_prelude_flag $ format_arg $ stats_flag)

(* ---------------------------------------------------------------- *)
(* batch                                                             *)

let domains_arg =
  let doc = "Number of OCaml domains to verify across (default: the \
             runtime's recommendation)." in
  Arg.(value & opt (some int) None & info [ "j"; "domains" ] ~docv:"N" ~doc)

let batch_cmd =
  let run files global with_prelude domains format stats =
    handle ~json:(format = `Json) ~stats (fun () ->
        let jobs = List.map read_input files in
        let s = make_session ~global ~with_prelude in
        let results = C.Session.run_batch ?domains s jobs in
        let failed = ref 0 in
        (match format with
        | `Json ->
            print_json
              (Json.List
                 (List.map
                    (fun (name, r) ->
                      match r with
                      | Ok o -> json_of_outcome ~file:name o
                      | Error d ->
                          incr failed;
                          json_of_failure ~file:name d)
                    results))
        | `Text ->
            List.iter
              (fun (name, r) ->
                match r with
                | Ok (o : C.Session.outcome) ->
                    Fmt.pr "%-40s %a@." name C.Interp.pp_flat o.value
                | Error d ->
                    incr failed;
                    Fmt.pr "%-40s ERROR %a@." name Diag.pp d)
              results;
            Fmt.pr "%d/%d ok@."
              (List.length results - !failed)
              (List.length results));
        if !failed > 0 then
          Diag.error Diag.Eval "%d of %d programs failed" !failed
            (List.length results))
  in
  let files =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE"
           ~doc:"Program files to run ('-' for stdin).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run many FG programs through the full pipeline, fanned out over \
          OCaml domains with a shared session configuration; output order \
          matches the argument order regardless of the domain count")
    Term.(const run $ files $ global_flag $ with_prelude_flag $ domains_arg
          $ format_arg $ stats_flag)

(* ---------------------------------------------------------------- *)
(* corpus                                                            *)

let corpus_cmd =
  let run name_opt all domains format stats =
    handle ~json:(format = `Json) ~stats (fun () ->
        match (name_opt, all) with
        | None, false ->
            List.iter
              (fun (e : C.Corpus.entry) ->
                Fmt.pr "%-30s %-18s %s@." e.name e.paper e.description)
              C.Corpus.all
        | None, true ->
            (* Run every entry, in parallel; an entry passes when its
               outcome matches its stated expectation. *)
            let s = C.Session.create () in
            let jobs =
              List.map (fun (e : C.Corpus.entry) -> (e.name, e.source))
                C.Corpus.all
            in
            let results = C.Session.run_batch ?domains s jobs in
            let failed = ref 0 in
            let verdicts =
              List.map2
                (fun (e : C.Corpus.entry) (name, r) ->
                  let ok =
                    match (e.expected, r) with
                    | C.Corpus.Value expect, Ok (o : C.Session.outcome) ->
                        C.Interp.flat_equal o.value expect
                    | C.Corpus.Fails phase, Error (d : Diag.diagnostic) ->
                        d.phase = phase
                    | C.Corpus.Value _, Error _
                    | C.Corpus.Fails _, Ok _ -> false
                  in
                  if not ok then incr failed;
                  (name, ok, r))
                C.Corpus.all results
            in
            (match format with
            | `Json ->
                print_json
                  (Json.List
                     (List.map
                        (fun (name, ok, r) ->
                          match r with
                          | Ok o ->
                              (match json_of_outcome ~file:name o with
                              | Json.Obj fields ->
                                  Json.Obj
                                    (("expected_ok", Json.Bool ok) :: fields)
                              | j -> j)
                          | Error d ->
                              (match json_of_failure ~file:name d with
                              | Json.Obj fields ->
                                  Json.Obj
                                    (("expected_ok", Json.Bool ok) :: fields)
                              | j -> j))
                        verdicts))
            | `Text ->
                List.iter
                  (fun (name, ok, r) ->
                    let show =
                      match r with
                      | Ok (o : C.Session.outcome) ->
                          C.Interp.flat_to_string o.value
                      | Error (d : Diag.diagnostic) ->
                          "rejected: " ^ Diag.phase_name d.phase
                    in
                    Fmt.pr "%-30s %s %s@." name
                      (if ok then "ok  " else "FAIL")
                      show)
                  verdicts;
                Fmt.pr "%d/%d as expected@."
                  (List.length verdicts - !failed)
                  (List.length verdicts));
            if !failed > 0 then
              Diag.error Diag.Eval "%d corpus entries off expectation"
                !failed
        | Some name, _ -> (
            let e = C.Corpus.find name in
            Fmt.pr "// %s (%s)@.%s@.@." e.description e.paper e.source;
            let s = C.Session.create () in
            match e.expected with
            | C.Corpus.Value expect ->
                let out = C.Session.run ~file:e.name s e.source in
                Fmt.pr "value: %a (expected %a)@." C.Interp.pp_flat out.value
                  C.Interp.pp_flat expect
            | C.Corpus.Fails phase -> (
                match C.Session.run_result ~file:e.name s e.source with
                | Error d ->
                    Fmt.pr "rejected as expected (%s): %s@."
                      (Diag.phase_name phase)
                      (Diag.to_string d)
                | Ok _ -> failwith "expected failure but program succeeded")))
  in
  let entry_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"NAME"
             ~doc:"Corpus entry to show and run (omit to list).")
  in
  let all_flag =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"Run every corpus entry (in parallel) and check each \
                   against its expectation.")
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:"List or run the built-in corpus of paper example programs")
    Term.(const run $ entry_arg $ all_flag $ domains_arg $ format_arg
          $ stats_flag)

(* ---------------------------------------------------------------- *)
(* eq: same-type queries                                             *)

let eq_cmd =
  let run assumptions query =
    handle (fun () ->
        let eq =
          List.fold_left
            (fun eq src ->
              match C.Parser.constr_of_string src with
              | C.Ast.CSame (a, b) -> C.Equality.assume eq a b
              | C.Ast.CModel _ ->
                  failwith "assumptions must be same-type constraints (a == b)")
            C.Equality.empty assumptions
        in
        match C.Parser.constr_of_string query with
        | C.Ast.CSame (a, b) ->
            Fmt.pr "%b@." (C.Equality.equal eq a b);
            Fmt.pr "repr lhs: %a@." C.Pretty.pp_ty (C.Equality.repr eq a);
            Fmt.pr "repr rhs: %a@." C.Pretty.pp_ty (C.Equality.repr eq b)
        | C.Ast.CModel _ -> failwith "query must be a same-type constraint")
  in
  let assumptions =
    Arg.(value & opt_all string []
         & info [ "a"; "assume" ] ~docv:"EQ"
             ~doc:"Assumed equality, e.g. 'C<int>.elt == int' (repeatable).")
  in
  let query =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"QUERY" ~doc:"Query equality, e.g. 'a == b'.")
  in
  Cmd.v
    (Cmd.info "eq"
       ~doc:
         "Decide a same-type query under assumptions (congruence closure), \
          printing the verdict and both representatives")
    Term.(const run $ assumptions $ query)

(* ---------------------------------------------------------------- *)
(* fuzz                                                              *)

let fuzz_cmd =
  let run seed count size mutants domains format save_dir stats =
    handle_code ~json:(format = `Json) ~stats (fun () ->
        let cfg = { C.Fuzz.seed; count; size; mutants } in
        let report = C.Fuzz.run ?domains cfg in
        let saved =
          match save_dir with
          | Some dir when report.C.Fuzz.r_failures <> [] ->
              C.Fuzz.save_failures ~dir report
          | _ -> []
        in
        (match format with
        | `Json -> print_json (C.Fuzz.report_to_json report)
        | `Text ->
            Fmt.pr "generated %d programs (seed %d, size %d), %d mutants@."
              report.C.Fuzz.r_generated seed size report.C.Fuzz.r_mutants_run;
            List.iter
              (fun (f : C.Fuzz.failure) ->
                Fmt.pr "FAIL #%d [%s] %s@."
                  f.C.Fuzz.f_index
                  (C.Fuzz.oracle_name f.C.Fuzz.f_oracle)
                  f.C.Fuzz.f_message;
                Fmt.pr "  shrunk (%d nodes):@." f.C.Fuzz.f_shrunk_nodes;
                String.split_on_char '\n' f.C.Fuzz.f_shrunk
                |> List.iter (fun l -> Fmt.pr "    %s@." l))
              report.C.Fuzz.r_failures;
            List.iter (fun p -> Fmt.pr "saved %s@." p) saved;
            if report.C.Fuzz.r_failures = [] then Fmt.pr "all oracles ok@."
            else
              Fmt.pr "%d oracle failure(s)@."
                (List.length report.C.Fuzz.r_failures));
        if report.C.Fuzz.r_failures = [] then 0 else 1)
  in
  let seed_arg =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"N"
             ~doc:"Master seed; the whole run is a pure function of it.")
  in
  let count_arg =
    Arg.(value & opt int 100
         & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate.")
  in
  let size_arg =
    Arg.(value & opt int 30
         & info [ "size" ] ~docv:"N"
             ~doc:"Size budget per generated program (AST-node scale).")
  in
  let mutants_arg =
    Arg.(value & opt int 2
         & info [ "mutants" ] ~docv:"N"
             ~doc:"Corrupted variants per program for the recovery oracle.")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save-failures" ] ~docv:"DIR"
             ~doc:"Write each failure's shrunk counterexample (original \
                   attached in comments) under $(docv).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate random well-typed FG programs and check them against \
          three differential oracles: theorem/semantic agreement, \
          pretty-print/parse round-trip, and error recovery on corrupted \
          variants; failures are shrunk before reporting")
    Term.(const run $ seed_arg $ count_arg $ size_arg $ mutants_arg
          $ domains_arg $ format_arg $ save_arg $ stats_flag)

(* ---------------------------------------------------------------- *)
(* repl                                                              *)

let repl_cmd =
  let run () = handle (fun () -> Repl.main ()) in
  Cmd.v
    (Cmd.info "repl"
       ~doc:
         "Interactive session: declarations accumulate, expressions run \
          through the full pipeline")
    Term.(const run $ const ())

(* ---------------------------------------------------------------- *)

let () =
  let doc =
    "System FG: concepts, models, where clauses, associated types and \
     same-type constraints (PLDI 2005 reproduction)"
  in
  let info = Cmd.info "fgc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            check_cmd; translate_cmd; run_cmd; verify_cmd; elaborate_cmd;
            batch_cmd; corpus_cmd; fuzz_cmd; eq_cmd; repl_cmd;
          ]))
