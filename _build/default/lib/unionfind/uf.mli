(** Imperative union-find with union by rank and path compression.

    Elements are dense integer ids handed out by {!make_set}.  This is
    the substrate of the congruence-closure decision procedure for FG's
    same-type constraints (paper Section 5, citing Nelson–Oppen).  All
    operations are amortized near-constant time (inverse Ackermann). *)

type t

(** [create ?capacity ()] — an empty structure; grows on demand. *)
val create : ?capacity:int -> unit -> t

(** Number of elements allocated so far. *)
val length : t -> int

(** Allocate a fresh singleton class and return its id. *)
val make_set : t -> int

(** Representative of the element's class (with path compression).
    Raises an internal diagnostic on out-of-range ids. *)
val find : t -> int -> int

(** Are the two elements in the same class? *)
val equiv : t -> int -> int -> bool

(** Merge two classes; returns the root of the merged class. *)
val union : t -> int -> int -> int

(** [union_into t ~winner x] merges so that [winner]'s root becomes the
    representative regardless of rank — used when the client must
    control which member represents a class. *)
val union_into : t -> winner:int -> int -> int

(** All classes as member lists, each headed by its representative.
    O(n α(n)); intended for tests and debugging. *)
val classes : t -> int list list

val count_classes : t -> int

(** Deep copy; the original and the copy evolve independently. *)
val copy : t -> t
