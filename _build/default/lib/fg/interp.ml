(** Direct big-step interpreter for System FG.

    The paper gives FG its semantics by translation to System F; this
    module gives FG a {e direct} operational semantics with runtime
    model dictionaries, so the two can be tested against each other: for
    every program in the corpus (and for generated programs), the value
    computed here must agree with the value computed by evaluating the
    translation in System F.

    Design notes:

    - Evaluation runs after type checking, so model resolution cannot
      fail for well-typed programs; failures here indicate a bug and are
      reported as runtime errors.
    - Type application substitutes the actual (closed) type arguments
      into the abstraction body, then resolves the instantiated model
      requirements against the {e application site's} model environment
      — the runtime mirror of FG's lexically scoped, call-site model
      lookup — and extends the closure's captured model environment with
      the resolved models.
    - Runtime types are closed, so type equality is syntactic equality
      after {!normalize_ty}, which resolves associated-type projections
      through the model environment. *)

open Ast
open Fg_util
module Smap = Names.Smap

type value =
  | VInt of int
  | VBool of bool
  | VUnit
  | VTuple of value list
  | VList of value list
  | VClos of renv * (string * ty) list * exp
  | VTyClos of renv * string list * constr list * exp
  | VPrim of string * int * value list

and renv = {
  venv : value option ref Smap.t;
  models : rmodel list;
  named : rmodel Smap.t;  (** named models, activated by [using] *)
  concepts : concept_decl Smap.t;
}

and rmodel = {
  r_concept : string;
  r_params : string list;  (** parameterized model binders; [] if ground *)
  r_constrs : constr list;  (** a parameterized model's context *)
  r_args : ty list;  (** normalized and closed; patterns if parameterized *)
  r_assoc : (string * ty) list;
  r_impl : rimpl;
}

and rimpl =
  | RReady of (string * value) list  (** evaluated members (ground) *)
  | RDeferred of renv * (string * exp) list
      (** a parameterized model's captured environment and raw member
          bodies, instantiated per use *)

type state = { mutable fuel : int }

let default_fuel = 10_000_000

let value_kind = function
  | VInt _ -> "int"
  | VBool _ -> "bool"
  | VUnit -> "unit"
  | VTuple _ -> "tuple"
  | VList _ -> "list"
  | VClos _ | VPrim _ -> "function"
  | VTyClos _ -> "type abstraction"

let rec pp_value ppf = function
  | VInt n -> Fmt.int ppf n
  | VBool b -> Fmt.bool ppf b
  | VUnit -> Fmt.string ppf "()"
  | VTuple vs -> Fmt.pf ppf "(@[%a@])" (Pp_util.comma_sep pp_value) vs
  | VList vs -> Fmt.pf ppf "[@[%a@]]" (Pp_util.comma_sep pp_value) vs
  | VClos _ -> Fmt.string ppf "<fun>"
  | VTyClos _ -> Fmt.string ppf "<tyfun>"
  | VPrim (p, _, _) -> Fmt.pf ppf "<prim:%s>" p

let value_to_string v = Pp_util.to_string pp_value v

(* ---------------------------------------------------------------- *)
(* Flat first-order values: the common ground for differential tests
   between this interpreter and the System F evaluation of the
   translation.                                                      *)

type flat =
  | FlInt of int
  | FlBool of bool
  | FlUnit
  | FlTuple of flat list
  | FlList of flat list
  | FlFun  (** any function-like value; compares equal to itself *)

let rec flatten = function
  | VInt n -> FlInt n
  | VBool b -> FlBool b
  | VUnit -> FlUnit
  | VTuple vs -> FlTuple (List.map flatten vs)
  | VList vs -> FlList (List.map flatten vs)
  | VClos _ | VTyClos _ | VPrim _ -> FlFun

let rec flatten_f : Fg_systemf.Eval.value -> flat = function
  | Fg_systemf.Eval.VInt n -> FlInt n
  | VBool b -> FlBool b
  | VUnit -> FlUnit
  | VTuple vs -> FlTuple (List.map flatten_f vs)
  | VList vs -> FlList (List.map flatten_f vs)
  | VClos _ | VTyClos _ | VPrim _ -> FlFun

let rec pp_flat ppf = function
  | FlInt n -> Fmt.int ppf n
  | FlBool b -> Fmt.bool ppf b
  | FlUnit -> Fmt.string ppf "()"
  | FlTuple vs -> Fmt.pf ppf "(@[%a@])" (Pp_util.comma_sep pp_flat) vs
  | FlList vs -> Fmt.pf ppf "[@[%a@]]" (Pp_util.comma_sep pp_flat) vs
  | FlFun -> Fmt.string ppf "<fun>"

let flat_to_string v = Pp_util.to_string pp_flat v

let rec flat_equal a b =
  match (a, b) with
  | FlInt x, FlInt y -> x = y
  | FlBool x, FlBool y -> x = y
  | FlUnit, FlUnit -> true
  | FlTuple xs, FlTuple ys | FlList xs, FlList ys ->
      List.length xs = List.length ys && List.for_all2 flat_equal xs ys
  | FlFun, FlFun -> true
  | _ -> false

(* ---------------------------------------------------------------- *)
(* Runtime type normalization and model lookup                       *)

let spend ?loc st =
  if st.fuel <= 0 then Diag.eval_error ?loc "evaluation fuel exhausted";
  st.fuel <- st.fuel - 1

(* Resolve associated-type projections using the models in scope until
   the type is projection-free.  Runtime types are closed, so matching
   is syntactic after recursive normalization. *)
let rec normalize_ty ?loc (models : rmodel list) (t : ty) : ty =
  match t with
  | TBase _ | TVar _ -> t
  | TArrow (args, ret) ->
      TArrow
        (List.map (normalize_ty ?loc models) args, normalize_ty ?loc models ret)
  | TTuple ts -> TTuple (List.map (normalize_ty ?loc models) ts)
  | TList t -> TList (normalize_ty ?loc models t)
  | TForall _ -> t (* runtime types under binders stay as-is *)
  | TAssoc (c, args, s) -> (
      let args' = List.map (normalize_ty ?loc models) args in
      match find_model ?loc models c args' with
      | Some (m, subst) -> (
          match List.assoc_opt s m.r_assoc with
          | Some ty -> normalize_ty ?loc models (subst_ty_list subst ty)
          | None ->
              Diag.eval_error ?loc
                "model of %s<...> has no associated type '%s' at runtime" c s)
      | None ->
          Diag.eval_error ?loc "no model of %s in scope at runtime"
            (Pretty.constr_to_string (CModel (c, args'))))

(* Find a model for [c<args>] ([args] closed); parameterized models
   match by one-way structural matching of their patterns, and their
   own requirements must resolve recursively. *)
and find_model ?loc models c args : (rmodel * (string * ty) list) option =
  let args = List.map (normalize_ty ?loc models) args in
  List.find_map
    (fun m ->
      if not (String.equal m.r_concept c) then None
      else if m.r_params = [] then
        if
          List.length m.r_args = List.length args
          && List.for_all2 ty_equal m.r_args args
        then Some (m, [])
        else None
      else
        match match_patterns m.r_params m.r_args args with
        | None -> None
        | Some subst ->
            if
              List.for_all
                (function
                  | CModel (c', args') ->
                      find_model ?loc models c'
                        (List.map (subst_ty_list subst) args')
                      <> None
                  | CSame (a, b) ->
                      ty_equal
                        (normalize_ty ?loc models (subst_ty_list subst a))
                        (normalize_ty ?loc models (subst_ty_list subst b)))
                m.r_constrs
            then Some (m, subst)
            else None)
    models

(* One-way structural matching of closed argument types against a
   parameterized model's patterns. *)
and match_patterns params pats args : (string * ty) list option =
  let rec go subst pat arg =
    match (pat, arg) with
    | TVar a, _ when List.mem a params -> (
        match List.assoc_opt a subst with
        | Some bound -> if ty_equal bound arg then Some subst else None
        | None -> Some ((a, arg) :: subst))
    | TBase b, TBase b' -> if b = b' then Some subst else None
    | TVar a, TVar a' -> if String.equal a a' then Some subst else None
    | TList p, TList a -> go subst p a
    | TArrow (ps, pr), TArrow (as_, ar) when List.length ps = List.length as_
      ->
        go_list subst (ps @ [ pr ]) (as_ @ [ ar ])
    | TTuple ps, TTuple as_ when List.length ps = List.length as_ ->
        go_list subst ps as_
    | TForall _, TForall _ -> if ty_equal pat arg then Some subst else None
    | _ -> None
  and go_list subst ps as_ =
    List.fold_left2
      (fun acc p a -> match acc with None -> None | Some s -> go s p a)
      (Some subst) ps as_
  in
  if List.length pats <> List.length args then None else go_list [] pats args

let find_model_exn ?loc models c args =
  match find_model ?loc models c args with
  | Some found -> found
  | None ->
      Diag.eval_error ?loc "no model of %s in scope at runtime"
        (Pretty.constr_to_string (CModel (c, args)))

(* ---------------------------------------------------------------- *)
(* Evaluation                                                        *)

type run = { st : state }

let bind renv x v = { renv with venv = Smap.add x (ref (Some v)) renv.venv }

let decl_of ?loc renv c =
  match Smap.find_opt c renv.concepts with
  | Some d -> d
  | None -> Diag.eval_error ?loc "unknown concept '%s' at runtime" c

let lookup ?loc renv x =
  match Smap.find_opt x renv.venv with
  | Some { contents = Some v } -> v
  | Some { contents = None } ->
      Diag.eval_error ?loc
        "recursive binding '%s' forced before initialization" x
  | None -> Diag.eval_error ?loc "unbound variable '%s' at runtime" x

(* Primitive application reuses the System F delta rules by converting
   through flat values — but closures can appear inside lists/tuples, so
   instead we duplicate the small delta table on FG values. *)
let delta ?loc name (args : value list) : value =
  let int2 f =
    match args with
    | [ VInt a; VInt b ] -> f a b
    | _ -> Diag.eval_error ?loc "primitive '%s' applied to bad arguments" name
  in
  match (name, args) with
  | "iadd", _ -> int2 (fun a b -> VInt (a + b))
  | "isub", _ -> int2 (fun a b -> VInt (a - b))
  | "imult", _ -> int2 (fun a b -> VInt (a * b))
  | "idiv", [ VInt _; VInt 0 ] -> Diag.eval_error ?loc "division by zero"
  | "imod", [ VInt _; VInt 0 ] -> Diag.eval_error ?loc "modulo by zero"
  | "idiv", _ -> int2 (fun a b -> VInt (a / b))
  | "imod", _ -> int2 (fun a b -> VInt (a mod b))
  | "ineg", [ VInt a ] -> VInt (-a)
  | "imin", _ -> int2 (fun a b -> VInt (min a b))
  | "imax", _ -> int2 (fun a b -> VInt (max a b))
  | "ilt", _ -> int2 (fun a b -> VBool (a < b))
  | "ile", _ -> int2 (fun a b -> VBool (a <= b))
  | "igt", _ -> int2 (fun a b -> VBool (a > b))
  | "ige", _ -> int2 (fun a b -> VBool (a >= b))
  | "ieq", _ -> int2 (fun a b -> VBool (a = b))
  | "ineq", _ -> int2 (fun a b -> VBool (a <> b))
  | "band", [ VBool a; VBool b ] -> VBool (a && b)
  | "bor", [ VBool a; VBool b ] -> VBool (a || b)
  | "bnot", [ VBool a ] -> VBool (not a)
  | "beq", [ VBool a; VBool b ] -> VBool (a = b)
  | "cons", [ v; VList vs ] -> VList (v :: vs)
  | "car", [ VList (v :: _) ] -> v
  | "car", [ VList [] ] -> Diag.eval_error ?loc "car of empty list"
  | "cdr", [ VList (_ :: vs) ] -> VList vs
  | "cdr", [ VList [] ] -> Diag.eval_error ?loc "cdr of empty list"
  | "null", [ VList vs ] -> VBool (vs = [])
  | "length", [ VList vs ] -> VInt (List.length vs)
  | "append", [ VList xs; VList ys ] -> VList (xs @ ys)
  | _ ->
      Diag.eval_error ?loc "primitive '%s' applied to invalid arguments (%s)"
        name
        (String.concat ", " (List.map value_kind args))

let prim_value ?loc name =
  let info = Fg_systemf.Prims.lookup_exn ?loc name in
  if name = "nil" then VList [] else VPrim (name, info.arity, [])

let rec apply_value ?loc run fn args =
  match (fn, args) with
  | _, [] -> fn
  | VClos (cenv, params, body), _ ->
      let n = List.length params in
      if List.length args < n then
        Diag.eval_error ?loc
          "function expecting %d argument(s) applied to only %d" n
          (List.length args)
      else begin
        spend ?loc run.st;
        let now = List.filteri (fun i _ -> i < n) args in
        let rest = List.filteri (fun i _ -> i >= n) args in
        let env' =
          List.fold_left2 (fun acc (x, _) v -> bind acc x v) cenv params now
        in
        apply_value ?loc run (eval run env' body) rest
      end
  | VPrim (name, remaining, collected), _ ->
      let n = List.length args in
      if n < remaining then
        VPrim (name, remaining - n, List.rev args @ collected)
      else if n = remaining then begin
        spend ?loc run.st;
        delta ?loc name (List.rev collected @ args)
      end
      else
        Diag.eval_error ?loc "primitive '%s' applied to too many arguments"
          name
  | v, _ ->
      Diag.eval_error ?loc "application of non-function value (%s)"
        (value_kind v)

(* Fully instantiate a resolved model at a use site: a parameterized
   model becomes ground, with its context resolved against the use-site
   models and its member bodies evaluated under the captured environment
   extended with the resolved context models — the runtime mirror of the
   polymorphic-dictionary application the translation emits. *)
and instantiate ?loc run (site_models : rmodel list)
    ((m, subst) : rmodel * (string * ty) list) : rmodel =
  match m.r_impl with
  | RReady _ -> m
  | RDeferred (cenv, bodies) ->
    spend ?loc run.st;
    let inst_ty t = normalize_ty ?loc site_models (subst_ty_list subst t) in
    let resolved =
      List.filter_map
        (function
          | CModel (c', args') ->
              let args'' = List.map inst_ty args' in
              Some
                (instantiate ?loc run site_models
                   (find_model_exn ?loc site_models c' args''))
          | CSame _ -> None)
        m.r_constrs
    in
    let body_env = { cenv with models = resolved @ cenv.models } in
    let sigma = subst_of_list subst in
    let members =
      List.map (fun (x, e) -> (x, eval run body_env (subst_ty_exp sigma e))) bodies
    in
    {
      r_concept = m.r_concept;
      r_params = [];
      r_constrs = [];
      r_args = List.map inst_ty m.r_args;
      r_assoc = List.map (fun (s, t) -> (s, inst_ty t)) m.r_assoc;
      r_impl = RReady members;
    }

(* Member lookup on an instantiated (ground) model: own members first,
   then the refined concepts' models, mirroring the static search. *)
and find_member ?loc run renv (m : rmodel) x : value option =
  let members =
    match m.r_impl with
    | RReady ms -> ms
    | RDeferred _ -> Diag.ice "interp: member lookup on uninstantiated model"
  in
  match List.assoc_opt x members with
  | Some v -> Some v
  | None ->
      let decl = decl_of ?loc renv m.r_concept in
      let params = List.combine decl.c_params m.r_args in
      let subst = params @ m.r_assoc in
      let rec try_refines = function
        | [] -> None
        | (c', rargs) :: rest -> (
            let rargs' =
              List.map
                (fun t -> normalize_ty ?loc renv.models (subst_ty_list subst t))
                rargs
            in
            match find_model ?loc renv.models c' rargs' with
            | None -> try_refines rest
            | Some found -> (
                let m' = instantiate ?loc run renv.models found in
                match find_member ?loc run renv m' x with
                | Some v -> Some v
                | None -> try_refines rest))
      in
      try_refines decl.c_refines

and eval (run : run) (renv : renv) (e : exp) : value =
  let loc = e.loc in
  match e.desc with
  | Var x -> lookup ~loc renv x
  | Lit (LInt n) -> VInt n
  | Lit (LBool b) -> VBool b
  | Lit LUnit -> VUnit
  | Prim p -> prim_value ~loc p
  | Abs (params, body) -> VClos (renv, params, body)
  | TyAbs (tvs, constrs, body) -> VTyClos (renv, tvs, constrs, body)
  | TyApp (f, tys) -> (
      match eval run renv f with
      | VTyClos (cenv, tvs, constrs, body) ->
          spend ~loc run.st;
          if List.length tvs <> List.length tys then
            Diag.eval_error ~loc "type application arity mismatch at runtime";
          let tys' = List.map (normalize_ty ~loc renv.models) tys in
          let s = subst_of_list (List.combine tvs tys') in
          (* Resolve instantiated model requirements at the CALL SITE —
             including the models of every concept each requirement
             (transitively) refines, mirroring the checker's proxy
             entries, so that inherited members resolve in the body. *)
          let rec resolve_closure acc c args =
            if
              List.exists
                (fun m ->
                  String.equal m.r_concept c
                  && List.length m.r_args = List.length args
                  && List.for_all2 ty_equal m.r_args args)
                acc
            then acc
            else
              let m =
                instantiate ~loc run renv.models
                  (find_model_exn ~loc renv.models c args)
              in
              let acc = m :: acc in
              let decl = decl_of ~loc renv c in
              let subst0 = List.combine decl.c_params args @ m.r_assoc in
              List.fold_left
                (fun acc (c', rargs) ->
                  let rargs' =
                    List.map
                      (fun t ->
                        normalize_ty ~loc renv.models
                          (subst_ty_list subst0 t))
                      rargs
                  in
                  resolve_closure acc c' rargs')
                acc
                (decl.c_refines @ decl.c_requires)
          in
          let resolved =
            List.fold_left
              (fun acc -> function
                | CModel (c, args) ->
                    let args' =
                      List.map
                        (fun a ->
                          normalize_ty ~loc renv.models (subst_ty s a))
                        args
                    in
                    resolve_closure acc c args'
                | CSame _ -> acc)
              [] constrs
          in
          let body' = subst_ty_exp s body in
          eval run { cenv with models = resolved @ cenv.models } body'
      | VPrim _ as p -> p
      | VList [] as v -> v
      | v ->
          Diag.eval_error ~loc
            "type application of non-polymorphic value (%s)" (value_kind v))
  | App (f, args) ->
      let vf = eval run renv f in
      let vargs = List.map (eval run renv) args in
      apply_value ~loc run vf vargs
  | Let (x, rhs, body) ->
      let v = eval run renv rhs in
      eval run (bind renv x v) body
  | Tuple es -> VTuple (List.map (eval run renv) es)
  | Nth (e0, k) -> (
      match eval run renv e0 with
      | VTuple vs when k >= 0 && k < List.length vs -> List.nth vs k
      | VTuple vs ->
          Diag.eval_error ~loc "projection %d out of bounds for %d-tuple" k
            (List.length vs)
      | v -> Diag.eval_error ~loc "nth of non-tuple value (%s)" (value_kind v))
  | Fix (x, _, body) ->
      spend ~loc run.st;
      let cell = ref None in
      let renv' = { renv with venv = Smap.add x cell renv.venv } in
      let v = eval run renv' body in
      cell := Some v;
      v
  | If (c, t, f) -> (
      match eval run renv c with
      | VBool true -> eval run renv t
      | VBool false -> eval run renv f
      | v ->
          Diag.eval_error ~loc "if condition evaluated to non-bool (%s)"
            (value_kind v))
  | Member (c, args, x) -> (
      let args' = List.map (normalize_ty ~loc renv.models) args in
      let m =
        instantiate ~loc run renv.models
          (find_model_exn ~loc renv.models c args')
      in
      match find_member ~loc run renv m x with
      | Some v -> v
      | None ->
          Diag.eval_error ~loc "model of %s has no member '%s' at runtime" c x)
  | ConceptDecl (d, body) ->
      eval run { renv with concepts = Smap.add d.c_name d renv.concepts } body
  | ModelDecl (d, body) ->
      (* All models are deferred and knot-tied: the captured environment
         contains the model itself, so member bodies (including filled-in
         defaults and recursive parameterized instances) may refer to the
         model being declared.  Ground models' member bodies evaluate on
         first use. *)
      let ground = d.m_params = [] in
      let args' =
        if ground then List.map (normalize_ty ~loc renv.models) d.m_args
        else d.m_args
      in
      let assoc' =
        if ground then
          List.map (fun (s, t) -> (s, normalize_ty ~loc renv.models t)) d.m_assoc
        else d.m_assoc
      in
      let rec m =
        {
          r_concept = d.m_concept;
          r_params = d.m_params;
          r_constrs = d.m_constrs;
          r_args = args';
          r_assoc = assoc';
          r_impl =
            RDeferred
              ( {
                  venv = renv.venv;
                  models = m :: renv.models;
                  named = renv.named;
                  concepts = renv.concepts;
                },
                d.m_members );
        }
      in
      (match d.m_name with
      | Some name -> eval run { renv with named = Smap.add name m renv.named } body
      | None -> eval run { renv with models = m :: renv.models } body)
  | Using (m, body) -> (
      match Smap.find_opt m renv.named with
      | Some rm -> eval run { renv with models = rm :: renv.models } body
      | None ->
          Diag.eval_error ~loc "unknown named model '%s' at runtime" m)
  | TypeAlias (t, ty, body) ->
      let ty' = normalize_ty ~loc renv.models ty in
      eval run renv (subst_ty_exp (Smap.singleton t ty') body)

(** Evaluate a closed, well-typed FG program. *)
let run_program ?(fuel = default_fuel) (e : exp) : value * int =
  let run = { st = { fuel } } in
  let renv =
    { venv = Smap.empty; models = []; named = Smap.empty; concepts = Smap.empty }
  in
  let v = eval run renv e in
  (v, fuel - run.st.fuel)

let run_value ?fuel e = fst (run_program ?fuel e)

let run_result ?fuel e = Diag.protect (fun () -> run_program ?fuel e)
