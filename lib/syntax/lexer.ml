(** Hand-written scanner shared by the System F and FG parsers.

    Produces the full token stream eagerly (programs are small; the
    parsers want arbitrary lookahead for cheap).  Supports [//] line
    comments and nestable [/* ... */] block comments.

    ['<'] and ['>'] are always lexed as single tokens, never combined
    into shifts, so nested concept applications like [C<D<int>>] lex
    correctly; the parsers disambiguate comparison operators from
    type-argument brackets by context. *)

open Fg_util

(* The guided fuzzer hunts inputs that exercise recovery. *)
let p_recover_skip = Coverage.probe "recover.lexer.skip"

type t = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let create ?(file = "<input>") src = { src; file; pos = 0; line = 1; col = 1 }

let current_pos lx : Loc.pos = { line = lx.line; col = lx.col; offset = lx.pos }

let eof lx = lx.pos >= String.length lx.src

let peek_char lx = if eof lx then '\000' else lx.src.[lx.pos]

let peek_char2 lx =
  if lx.pos + 1 >= String.length lx.src then '\000' else lx.src.[lx.pos + 1]

let advance lx =
  if not (eof lx) then begin
    if lx.src.[lx.pos] = '\n' then begin
      lx.line <- lx.line + 1;
      lx.col <- 1
    end
    else lx.col <- lx.col + 1;
    lx.pos <- lx.pos + 1
  end

let error lx ?code fmt =
  let p = current_pos lx in
  let loc = Loc.make ~file:lx.file ~start_pos:p ~end_pos:p in
  Diag.lex_error ?code ~loc fmt

let is_ident_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

let is_digit = function '0' .. '9' -> true | _ -> false

let rec skip_trivia lx =
  match peek_char lx with
  | ' ' | '\t' | '\r' | '\n' ->
      advance lx;
      skip_trivia lx
  | '/' when peek_char2 lx = '/' ->
      while (not (eof lx)) && peek_char lx <> '\n' do
        advance lx
      done;
      skip_trivia lx
  | '/' when peek_char2 lx = '*' ->
      advance lx;
      advance lx;
      skip_block_comment lx 1;
      skip_trivia lx
  | _ -> ()

and skip_block_comment lx depth =
  if depth = 0 then ()
  else if eof lx then error lx ~code:"FG0002" "unterminated block comment"
  else if peek_char lx = '*' && peek_char2 lx = '/' then begin
    advance lx;
    advance lx;
    skip_block_comment lx (depth - 1)
  end
  else if peek_char lx = '/' && peek_char2 lx = '*' then begin
    advance lx;
    advance lx;
    skip_block_comment lx (depth + 1)
  end
  else begin
    advance lx;
    skip_block_comment lx depth
  end

let read_ident lx =
  let start = lx.pos in
  while is_ident_char (peek_char lx) do
    advance lx
  done;
  String.sub lx.src start (lx.pos - start)

let read_int lx =
  let start = lx.pos in
  while is_digit (peek_char lx) do
    advance lx
  done;
  let s = String.sub lx.src start (lx.pos - start) in
  match int_of_string_opt s with
  | Some n -> n
  | None -> error lx ~code:"FG0003" "integer literal out of range: %s" s

(* Recognize one token; [skip_trivia] has already run. *)
let next_token lx : Token.t =
  let c = peek_char lx in
  if eof lx then Token.EOF
  else if is_digit c then Token.INT (read_int lx)
  else if is_ident_start c then begin
    let s = read_ident lx in
    if Token.is_keyword s then Token.KW s
    else if s.[0] >= 'A' && s.[0] <= 'Z' then Token.UIDENT s
    else Token.LIDENT s
  end
  else begin
    let two tok =
      advance lx;
      advance lx;
      tok
    in
    let one tok =
      advance lx;
      tok
    in
    match (c, peek_char2 lx) with
    | '-', '>' -> two Token.ARROW
    | '=', '>' -> two Token.DARROW
    | '=', '=' -> two Token.EQEQ
    | '!', '=' -> two Token.NEQ
    | '<', '=' -> two Token.LE
    | '>', '=' -> two Token.GE
    | '&', '&' -> two Token.ANDAND
    | '|', '|' -> two Token.BARBAR
    | '(', _ -> one Token.LPAREN
    | ')', _ -> one Token.RPAREN
    | '[', _ -> one Token.LBRACKET
    | ']', _ -> one Token.RBRACKET
    | '{', _ -> one Token.LBRACE
    | '}', _ -> one Token.RBRACE
    | '<', _ -> one Token.LT
    | '>', _ -> one Token.GT
    | ',', _ -> one Token.COMMA
    | ';', _ -> one Token.SEMI
    | ':', _ -> one Token.COLON
    | '.', _ -> one Token.DOT
    | '=', _ -> one Token.EQ
    | '*', _ -> one Token.STAR
    | '+', _ -> one Token.PLUS
    | '-', _ -> one Token.MINUS
    | '/', _ -> one Token.SLASH
    | '%', _ -> one Token.PERCENT
    | '!', _ -> one Token.BANG
    | c, _ -> error lx "unexpected character %C" c
  end

(** Lex the whole input to an array of located tokens, ending in [EOF]. *)
let tokenize ?file src =
  let lx = create ?file src in
  let toks = ref [] in
  let continue = ref true in
  while !continue do
    skip_trivia lx;
    let start_pos = current_pos lx in
    let tok = next_token lx in
    let end_pos = current_pos lx in
    let loc = Loc.make ~file:lx.file ~start_pos ~end_pos in
    toks := (tok, loc) :: !toks;
    if tok = Token.EOF then continue := false
  done;
  Array.of_list (List.rev !toks)

(** Like {!tokenize}, but lexer errors are reported to [engine] and the
    scan keeps going: the offending character is skipped and the next
    token is read after it.  The result always ends in [EOF], so the
    parser can run over whatever tokens survived. *)
let tokenize_recovering ~engine ?file src =
  let lx = create ?file src in
  let toks = ref [] in
  let continue = ref true in
  while !continue do
    match
      skip_trivia lx;
      let start_pos = current_pos lx in
      let tok = next_token lx in
      let end_pos = current_pos lx in
      (tok, Loc.make ~file:lx.file ~start_pos ~end_pos)
    with
    | tok, loc ->
        toks := (tok, loc) :: !toks;
        if tok = Token.EOF then continue := false
    | exception Diag.Error d ->
        Coverage.hit p_recover_skip;
        Diag.report engine d;
        (* Skip the character the scanner tripped on so the loop makes
           progress; at end of input (unterminated comment) the next
           round produces EOF. *)
        if not (eof lx) then advance lx
  done;
  Array.of_list (List.rev !toks)
