lib/fg/corpus.mli: Fg_util Interp
