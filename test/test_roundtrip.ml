(* Pretty → parse round-trip: re-parsing a pretty-printed program must
   reproduce the same AST up to locations ({!Ast.exp_equal}) — the
   relation the fuzzing round-trip oracle checks per generated program,
   pinned here on every committed program file, every corpus entry and
   a set of syntax corner cases. *)

open Fg_core

let programs_dir = "../programs"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let roundtrip name src =
  let ast = Parser.exp_of_string ~file:name src in
  let printed = Pretty.exp_to_string ast in
  let ast' =
    try Parser.exp_of_string ~file:(name ^ ":printed") printed
    with Fg_util.Diag.Error d ->
      Alcotest.failf "%s: printed source no longer parses: %s\n--- printed:\n%s"
        name (Fg_util.Diag.to_string d) printed
  in
  if not (Ast.exp_equal ast ast') then
    Alcotest.failf "%s: pretty -> parse changed the program\n--- printed:\n%s"
      name printed

let fg_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".fg")
  |> List.sort compare

let test_program_files () =
  List.iter
    (fun f -> roundtrip f (read_file (Filename.concat programs_dir f)))
    (fg_files programs_dir)

(* The error corpus: sources that still parse (their failures are
   semantic) must round-trip too; syntax-error sources are skipped. *)
let test_error_files () =
  let dir = Filename.concat programs_dir "errors" in
  List.iter
    (fun f ->
      let src = read_file (Filename.concat dir f) in
      match Parser.exp_of_string ~file:f src with
      | exception Fg_util.Diag.Error _ -> ()
      | _ -> roundtrip f src)
    (fg_files dir)

let test_corpus () =
  List.iter (fun (e : Corpus.entry) -> roundtrip e.name e.source) Corpus.all

(* Corner cases the file corpus does not pin down. *)
let test_corners () =
  List.iter
    (fun src -> roundtrip src src)
    [
      "-5";
      "0 - 5";
      "-5 + -7";
      "ineg(5)";
      "fun (x : int) => -x";
      "nth (1, true) 0";
      "nil[list int]";
      "(1, (2, true), ())";
      "let x = -1 in x - -2";
      "tfun t => fun (x : t) => x";
      "if !true then 1 % 2 else 3 / 4";
    ]

(* Negative literals keep folding through the parser sugar. *)
let test_negative_literals () =
  let ast = Parser.exp_of_string "-5" in
  (match ast.Ast.desc with
  | Ast.Lit (Ast.LInt (-5)) -> ()
  | _ -> Alcotest.failf "-5 did not parse to a literal");
  let ast = Parser.exp_of_string "1 - -5" in
  Alcotest.(check string)
    "subtraction of a negative literal" "isub(1, -5)"
    (Pretty.exp_to_flat_string ast);
  (* Double negation is not a literal: -(-5) stays an ineg call. *)
  let ast = Parser.exp_of_string "- -5" in
  Alcotest.(check string) "double negation folds" "5"
    (Pretty.exp_to_flat_string ast)

let suite =
  [
    Alcotest.test_case "program files round-trip" `Quick test_program_files;
    Alcotest.test_case "error corpus round-trips" `Quick test_error_files;
    Alcotest.test_case "corpus entries round-trip" `Quick test_corpus;
    Alcotest.test_case "syntax corners round-trip" `Quick test_corners;
    Alcotest.test_case "negative literal folding" `Quick
      test_negative_literals;
  ]
