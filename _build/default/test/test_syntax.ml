(* Tests for the shared lexing/parsing infrastructure: token streams,
   comments, locations, lookahead, and lexer failure modes. *)

open Fg_syntax
module T = Token

let toks src =
  Lexer.tokenize src |> Array.to_list |> List.map fst
  |> List.filter (fun t -> t <> T.EOF)

let test_basic_tokens () =
  Alcotest.(check bool) "idents and ints" true
    (toks "foo Bar 42"
    = [ T.LIDENT "foo"; T.UIDENT "Bar"; T.INT 42 ]);
  Alcotest.(check bool) "keywords recognized" true
    (toks "let in concept model" =
       [ T.KW "let"; T.KW "in"; T.KW "concept"; T.KW "model" ]);
  Alcotest.(check bool) "underscore ident" true
    (toks "_x x_1 x'" = [ T.LIDENT "_x"; T.LIDENT "x_1"; T.LIDENT "x'" ])

let test_operators () =
  Alcotest.(check bool) "two-char ops" true
    (toks "-> => == != <= >= && ||"
    = [ T.ARROW; T.DARROW; T.EQEQ; T.NEQ; T.LE; T.GE; T.ANDAND; T.BARBAR ]);
  Alcotest.(check bool) "one-char ops" true
    (toks "< > = + - * / % ! . , ; :"
    = [ T.LT; T.GT; T.EQ; T.PLUS; T.MINUS; T.STAR; T.SLASH; T.PERCENT;
        T.BANG; T.DOT; T.COMMA; T.SEMI; T.COLON ])

let test_angle_brackets_never_combine () =
  (* C<D<int>> must lex as ... GT GT, never a shift *)
  Alcotest.(check bool) "no >> token" true
    (toks "C<D<int>>"
    = [ T.UIDENT "C"; T.LT; T.UIDENT "D"; T.LT; T.KW "int"; T.GT; T.GT ])

let test_comments () =
  Alcotest.(check bool) "line comment" true (toks "1 // two\n 3" = [ T.INT 1; T.INT 3 ]);
  Alcotest.(check bool) "block comment" true (toks "1 /* x */ 2" = [ T.INT 1; T.INT 2 ]);
  Alcotest.(check bool) "nested block" true
    (toks "1 /* a /* b */ c */ 2" = [ T.INT 1; T.INT 2 ]);
  (* unterminated block comment is a lex error *)
  match Fg_util.Diag.protect (fun () -> Lexer.tokenize "1 /* oops") with
  | Ok _ -> Alcotest.fail "expected lex error"
  | Error d -> Alcotest.(check bool) "phase" true (d.phase = Fg_util.Diag.Lexer)

let test_locations () =
  let arr = Lexer.tokenize ~file:"f.fg" "ab\n  cd" in
  let _, loc1 = arr.(0) in
  let _, loc2 = arr.(1) in
  Alcotest.(check int) "first line" 1 loc1.start_pos.line;
  Alcotest.(check int) "first col" 1 loc1.start_pos.col;
  Alcotest.(check int) "second line" 2 loc2.start_pos.line;
  Alcotest.(check int) "second col" 3 loc2.start_pos.col;
  Alcotest.(check string) "file recorded" "f.fg" loc1.file

let test_bad_character () =
  match Fg_util.Diag.protect (fun () -> Lexer.tokenize "a § b") with
  | Ok _ -> Alcotest.fail "expected lex error"
  | Error d ->
      Alcotest.(check bool) "mentions the char" true
        (Astring_contains.contains ~needle:"unexpected character" d.message)

let test_int_overflow () =
  match
    Fg_util.Diag.protect (fun () ->
        Lexer.tokenize "99999999999999999999999999999")
  with
  | Ok _ -> Alcotest.fail "expected lex error"
  | Error d ->
      Alcotest.(check bool) "out of range" true
        (Astring_contains.contains ~needle:"out of range" d.message)

let test_parser_base_lookahead () =
  let p = Parser_base.of_string "a b c d" in
  Alcotest.(check bool) "peek" true (Parser_base.peek p = T.LIDENT "a");
  Alcotest.(check bool) "peek2" true (Parser_base.peek2 p = T.LIDENT "b");
  Alcotest.(check bool) "peek_nth 2" true
    (Parser_base.peek_nth p 2 = T.LIDENT "c");
  Alcotest.(check bool) "peek_nth beyond end" true
    (Parser_base.peek_nth p 99 = T.EOF);
  Parser_base.skip p;
  Alcotest.(check bool) "after skip" true (Parser_base.peek p = T.LIDENT "b")

let test_parser_base_sep_list () =
  let p = Parser_base.of_string "1, 2, 3 rest" in
  let xs =
    Parser_base.sep_list p ~sep:T.COMMA ~elem:(fun p ->
        Parser_base.expect_int p)
  in
  Alcotest.(check (list int)) "elements" [ 1; 2; 3 ] xs;
  Alcotest.(check bool) "stops at non-sep" true
    (Parser_base.peek p = T.LIDENT "rest")

let test_parser_base_expect () =
  let p = Parser_base.of_string "x" in
  (match Fg_util.Diag.protect (fun () -> Parser_base.expect p T.COMMA) with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error d ->
      Alcotest.(check bool) "found shown" true
        (Astring_contains.contains ~needle:"identifier 'x'" d.message));
  let p2 = Parser_base.of_string "x" in
  Alcotest.(check bool) "eat false" false (Parser_base.eat p2 T.COMMA);
  Alcotest.(check bool) "cursor unmoved" true
    (Parser_base.peek p2 = T.LIDENT "x")

let test_eof_idempotent () =
  let p = Parser_base.of_string "" in
  Alcotest.(check bool) "eof" true (Parser_base.peek p = T.EOF);
  Parser_base.skip p;
  Parser_base.skip p;
  Alcotest.(check bool) "still eof" true (Parser_base.peek p = T.EOF)

let suite =
  [
    Alcotest.test_case "basic tokens" `Quick test_basic_tokens;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "angle brackets never combine" `Quick
      test_angle_brackets_never_combine;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "token locations" `Quick test_locations;
    Alcotest.test_case "bad character" `Quick test_bad_character;
    Alcotest.test_case "int overflow" `Quick test_int_overflow;
    Alcotest.test_case "lookahead" `Quick test_parser_base_lookahead;
    Alcotest.test_case "sep_list" `Quick test_parser_base_sep_list;
    Alcotest.test_case "expect/eat" `Quick test_parser_base_expect;
    Alcotest.test_case "eof idempotent" `Quick test_eof_idempotent;
  ]
