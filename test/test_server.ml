(* Integration tests for the fgc serve daemon: an in-process server on
   a private unix socket, exercised through the real client — batch
   byte-identity against one-shot `fgc run --format=json`, deadlines,
   protocol violations, backpressure, stats, and graceful drain. *)

open Fg_server

let fgc = "../bin/fgc.exe"
let programs_dir = "../programs"

let contains ~needle s = Astring_contains.contains ~needle s

let next_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fgtest_%d_%d.sock" (Unix.getpid ()) !n)

(* Start a daemon, run [f] against it, then drain it and join the
   accept thread — every test path tears the server down fully, so a
   hung drain shows up as a hung test. *)
let with_server ?(workers = 2) ?(max_queue = 64) ?request_timeout_ms f =
  let path = next_sock () in
  let cfg =
    {
      (Server.default_config (`Unix path)) with
      workers;
      max_queue;
      request_timeout_ms;
    }
  in
  let srv = Server.create cfg in
  let th = Thread.create Server.run srv in
  Fun.protect
    ~finally:(fun () ->
      Server.request_shutdown srv;
      Thread.join th;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f (`Unix path : Server.address) srv)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let one_shot_json path =
  let out_file = Filename.temp_file "fgc_oneshot" ".json" in
  let cmd =
    Printf.sprintf "%s run -p --format=json %s > %s 2>/dev/null"
      (Filename.quote fgc) (Filename.quote path) (Filename.quote out_file)
  in
  ignore (Sys.command cmd);
  let out = read_file out_file in
  Sys.remove out_file;
  out

let corpus_files () =
  Sys.readdir programs_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".fg")
  |> List.sort String.compare
  |> List.map (Filename.concat programs_dir)

(* The ISSUE acceptance bar: every corpus file served by the daemon
   must come back byte-identical to one-shot `fgc run --format=json`
   (the served payload is the one-shot stdout minus print_endline's
   newline). *)
let test_batch_byte_identical () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus non-empty" true (files <> []);
  with_server (fun addr _srv ->
      let reqs =
        List.mapi
          (fun i f ->
            Protocol.request ~id:(i + 1) ~file:f ~source:(read_file f)
              ~prelude:true Protocol.Run)
          files
      in
      let c = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          let resps = Client.batch c reqs in
          Alcotest.(check int) "one response per file" (List.length files)
            (List.length resps);
          List.iter2
            (fun f (r : Protocol.response) ->
              let expected = one_shot_json f in
              Alcotest.(check string) (f ^ " byte-identical") expected
                (r.Protocol.r_payload ^ "\n"))
            files resps))

let test_single_requests () =
  with_server (fun addr _srv ->
      let c = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          let r = Client.run_file c ~file:"<t>" "1 + 2 * 3" in
          Alcotest.(check string) "run ok" "ok"
            (Protocol.status_name r.Protocol.r_status);
          Alcotest.(check bool) "value" true
            (contains ~needle:"\"value_str\": \"7\"" r.Protocol.r_payload);
          let r =
            Client.request c
              (Protocol.request ~id:2 ~file:"<t>" ~source:"fun (x : int) => x"
                 Protocol.Check)
          in
          Alcotest.(check string) "check ok" "ok"
            (Protocol.status_name r.Protocol.r_status);
          Alcotest.(check bool) "type" true
            (contains ~needle:"fn(int) -> int" r.Protocol.r_payload);
          let r =
            Client.request c
              (Protocol.request ~id:3 ~file:"<t>" ~source:"1 + true"
                 Protocol.Run)
          in
          Alcotest.(check string) "type error is Failed" "error"
            (Protocol.status_name r.Protocol.r_status);
          Alcotest.(check bool) "diagnostics present" true
            (contains ~needle:"\"diagnostics\"" r.Protocol.r_payload)))

let test_timeout () =
  with_server (fun addr _srv ->
      let c = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          (* timeout_ms = 0: the deadline has already passed when the
             worker dequeues, so this deterministically times out. *)
          let r = Client.run_file c ~timeout_ms:0 ~file:"<t>" "1 + 1" in
          Alcotest.(check string) "status" "timeout"
            (Protocol.status_name r.Protocol.r_status);
          Alcotest.(check bool) "FG0801 payload" true
            (contains ~needle:"FG0801" r.Protocol.r_payload);
          (* the connection and the worker both survive *)
          let r = Client.run_file c ~file:"<t>" "2 + 2" in
          Alcotest.(check string) "after timeout" "ok"
            (Protocol.status_name r.Protocol.r_status)))

let test_protocol_violations () =
  with_server (fun addr _srv ->
      (* Garbage JSON in a well-formed frame: FG0803, connection
         survives. *)
      let c = Client.connect addr in
      Client.send_raw_frame c "this is not json";
      let r = Client.read_response c in
      Alcotest.(check string) "garbage status" "protocol_error"
        (Protocol.status_name r.Protocol.r_status);
      Alcotest.(check bool) "FG0803" true
        (contains ~needle:"FG0803" r.Protocol.r_payload);
      let r = Client.run_file c ~file:"<t>" "1 + 1" in
      Alcotest.(check string) "conn survives garbage" "ok"
        (Protocol.status_name r.Protocol.r_status);
      Client.close c;
      (* Version mismatch: FG0804. *)
      let c = Client.connect addr in
      Client.send_raw_frame c "{\"v\": 999, \"id\": 5, \"kind\": \"stats\"}";
      let r = Client.read_response c in
      Alcotest.(check string) "version status" "protocol_error"
        (Protocol.status_name r.Protocol.r_status);
      Alcotest.(check bool) "FG0804" true
        (contains ~needle:"FG0804" r.Protocol.r_payload);
      Client.close c;
      (* Oversized length prefix: FG0806 and the server drops the
         connection (framing is unrecoverable). *)
      let c = Client.connect addr in
      Client.send_raw_bytes c "\xFF\xFF\xFF\xFF";
      let r = Client.read_response c in
      Alcotest.(check string) "oversized status" "protocol_error"
        (Protocol.status_name r.Protocol.r_status);
      Alcotest.(check bool) "FG0806" true
        (contains ~needle:"FG0806" r.Protocol.r_payload);
      (match Client.read_response c with
      | exception Client.Client_error _ -> ()
      | _ -> Alcotest.fail "server should close after a framing error");
      Client.close c)

let test_overload () =
  (* One worker, queue of one: a burst sent without reading responses
     must overflow the queue into explicit overload responses, never
     unbounded buffering. *)
  with_server ~workers:1 ~max_queue:1 (fun addr _srv ->
      let c = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          let n = 64 in
          for i = 1 to n do
            Client.send c
              (Protocol.request ~id:i ~file:"<burst>" ~source:"1 + 1"
                 Protocol.Run)
          done;
          let statuses =
            List.init n (fun _ ->
                (Client.read_response c).Protocol.r_status)
          in
          let count st =
            List.length (List.filter (fun s -> s = st) statuses)
          in
          Alcotest.(check int) "every request answered" n
            (List.length statuses);
          Alcotest.(check bool) "burst sheds load" true
            (count Protocol.Overload > 0);
          Alcotest.(check bool) "some requests served" true
            (count Protocol.Ok_ > 0));
      (* The client's batch mode retries overloads, so the same
         constrained server still completes a full batch. *)
      let c = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          let reqs =
            List.init 50 (fun i ->
                Protocol.request ~id:(i + 1) ~file:"<retry>" ~source:"1 + 1"
                  Protocol.Run)
          in
          let resps = Client.batch ~window:8 c reqs in
          List.iter
            (fun (r : Protocol.response) ->
              Alcotest.(check string)
                (Printf.sprintf "retried request %d" r.Protocol.r_id)
                "ok"
                (Protocol.status_name r.Protocol.r_status))
            resps))

let test_stats () =
  with_server (fun addr _srv ->
      let c = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          ignore (Client.run_file c ~file:"<t>" "1 + 1");
          let r = Client.stats c in
          Alcotest.(check string) "stats ok" "ok"
            (Protocol.status_name r.Protocol.r_status);
          match Fg_util.Json.of_string r.Protocol.r_payload with
          | Error e -> Alcotest.failf "stats payload not JSON: %s" e
          | Ok j ->
              List.iter
                (fun k ->
                  Alcotest.(check bool) (k ^ " present") true
                    (Fg_util.Json.mem k j <> None))
                [ "uptime_ms"; "enqueued"; "queue_depth"; "protocol_errors";
                  "connections_opened"; "requests"; "latency"; "queue_wait";
                  "workspace" ];
              (* the run we just did is visible in the counters *)
              let enqueued =
                match Fg_util.Json.int_field "enqueued" j with
                | Some n -> n
                | None -> -1
              in
              Alcotest.(check bool) "enqueued >= 1" true (enqueued >= 1)))

(* The v5 document kinds over a real socket: lifecycle, splice edits,
   warm/one-shot byte identity, a hover answer, and the FG0807/FG0808
   service errors with their exit-relevant Failed status. *)
let test_workspace_kinds () =
  with_server (fun addr _srv ->
      let c = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          let source = "let x = 1 in x + 1" in
          let r = Client.doc_open c ~name:"w.fg" source in
          Alcotest.(check string) "open ok" "ok"
            (Protocol.status_name r.Protocol.r_status);
          let oneshot = (Client.run_file c ~file:"w.fg" source).Protocol.r_payload in
          Alcotest.(check string) "open = run bytes" oneshot
            r.Protocol.r_payload;
          (* splice the literal: x = 2, so the program now runs to 3 *)
          let r =
            Client.doc_change c ~version:2 ~name:"w.fg"
              (`Edits [ (8, 1, "2") ])
          in
          Alcotest.(check string) "change ok" "ok"
            (Protocol.status_name r.Protocol.r_status);
          let edited = (Client.run_file c ~file:"w.fg" "let x = 2 in x + 1").Protocol.r_payload in
          Alcotest.(check string) "edited = run bytes" edited
            r.Protocol.r_payload;
          let d = Client.doc_diagnostics c ~name:"w.fg" in
          Alcotest.(check string) "diag replays last payload" edited
            d.Protocol.r_payload;
          let h = Client.hover c ~name:"w.fg" ~offset:13 in
          Alcotest.(check bool) "hover finds int" true
            (contains ~needle:"\"type\": \"int\"" h.Protocol.r_payload);
          (* stale version: refused, document untouched *)
          let r =
            Client.doc_change c ~version:2 ~name:"w.fg" (`Text "1")
          in
          Alcotest.(check string) "stale is failed" "error"
            (Protocol.status_name r.Protocol.r_status);
          Alcotest.(check bool) "stale is FG0808" true
            (contains ~needle:"FG0808" r.Protocol.r_payload);
          let r = Client.doc_close c ~name:"w.fg" in
          Alcotest.(check string) "close ok" "ok"
            (Protocol.status_name r.Protocol.r_status);
          let r = Client.doc_diagnostics c ~name:"w.fg" in
          Alcotest.(check string) "closed is failed" "error"
            (Protocol.status_name r.Protocol.r_status);
          Alcotest.(check bool) "closed is FG0807" true
            (contains ~needle:"FG0807" r.Protocol.r_payload)))

let test_shutdown_drain () =
  let path = next_sock () in
  let cfg = Server.default_config (`Unix path) in
  let srv = Server.create cfg in
  let th = Thread.create Server.run srv in
  let c = Client.connect (`Unix path) in
  let r = Client.run_file c ~file:"<t>" "1 + 1" in
  Alcotest.(check string) "pre-shutdown run" "ok"
    (Protocol.status_name r.Protocol.r_status);
  let r = Client.shutdown c in
  Alcotest.(check string) "shutdown ack" "ok"
    (Protocol.status_name r.Protocol.r_status);
  Alcotest.(check bool) "draining ack" true
    (contains ~needle:"draining" r.Protocol.r_payload);
  Client.close c;
  (* run returns: the drain completed and every worker was joined *)
  Thread.join th;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path)

let test_sustained_batch () =
  (* ~1000 requests through one connection: exercises pipelining,
     id-matching under out-of-order completion, and warm-session reuse
     across a long stream. *)
  with_server (fun addr _srv ->
      let n = 1000 in
      let reqs =
        List.init n (fun i ->
            Protocol.request ~id:(i + 1) ~file:"<s>"
              ~source:(Printf.sprintf "%d + %d" i (i + 1))
              Protocol.Run)
      in
      let c = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          let resps = Client.batch c reqs in
          Alcotest.(check int) "all answered" n (List.length resps);
          List.iteri
            (fun i (r : Protocol.response) ->
              Alcotest.(check int) "order preserved" (i + 1) r.Protocol.r_id;
              Alcotest.(check string) "ok"
                "ok"
                (Protocol.status_name r.Protocol.r_status);
              let needle =
                Printf.sprintf "\"value_str\": \"%d\"" ((2 * i) + 1)
              in
              Alcotest.(check bool) "right answer" true
                (contains ~needle r.Protocol.r_payload))
            resps))

(* Overload backoff: exponential, capped, jittered, and reproducible
   from a seed. *)
let test_backoff () =
  let open Fg_util in
  let collect seed n =
    let rec go rng attempt acc =
      if attempt = n then List.rev acc
      else
        let d, rng = Client.backoff_ms rng ~attempt in
        go rng (attempt + 1) (d :: acc)
    in
    go (Prng.make seed) 0 []
  in
  let a = collect 42 12 and a' = collect 42 12 in
  Alcotest.(check (list int)) "same seed, same delays" a a';
  (* every delay sits inside its attempt's jitter window, and the
     ceiling stops growing at the cap *)
  List.iteri
    (fun attempt d ->
      let top = min 200 (2 * (1 lsl min attempt 7)) in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d in [%d, %d] (got %d)" attempt (top / 2)
           top d)
        true
        (d >= max 1 (top / 2) && d <= top))
    a;
  (* distinct seeds diverge (the jitter is real) *)
  Alcotest.(check bool) "different seeds differ" true (collect 1 12 <> a)

let suite =
  [
    Alcotest.test_case "single requests" `Quick test_single_requests;
    Alcotest.test_case "overload backoff schedule" `Quick test_backoff;
    Alcotest.test_case "deadline timeout" `Quick test_timeout;
    Alcotest.test_case "protocol violations" `Quick test_protocol_violations;
    Alcotest.test_case "overload and retry" `Quick test_overload;
    Alcotest.test_case "stats endpoint" `Quick test_stats;
    Alcotest.test_case "workspace document kinds" `Quick
      test_workspace_kinds;
    Alcotest.test_case "graceful shutdown" `Quick test_shutdown_drain;
    Alcotest.test_case "batch byte-identical to one-shot" `Slow
      test_batch_byte_identical;
    Alcotest.test_case "sustained 1000-request batch" `Slow
      test_sustained_batch;
  ]
