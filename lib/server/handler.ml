(** Request execution against warm sessions (see the interface).

    One handler lives inside one worker domain and owns one session per
    distinct {!Fg_core.Session.Config.t} it has served — the config a
    request denotes (prelude × resolution mode × backend) {e is} the
    cache key, so adding a session-shaping request field never needs a
    new ad-hoc tuple here.  Each session is created lazily on the first
    request that needs it and kept warm from then on, so the prelude is
    parsed and checked once per worker rather than once per request. *)

open Fg_util
module C = Fg_core

type t = {
  fuel : int option;
  profile : Fg_util.Profile.t option;
      (** the server's default workload profile, attached to guided
          sessions when a request ships none of its own *)
  cache : C.Unit.cache;
      (** one compilation-unit cache shared by every session this
          worker owns: bounded memory and unified counters across all
          served configurations *)
  mutable sessions : (C.Session.Config.t * C.Session.t) list;
}

(* ---------------------------------------------------------------- *)
(* The peer tier: other daemons' disk stores, reached over the wire.
   Keys route to peers on a consistent-hash ring so a farm of workers
   agrees on placement without coordination, and a peer that stops
   answering is benched briefly and then re-probed — every failure
   mode degrades to local compilation, never to an error. *)

type peer = {
  p_name : string;
  p_addr : Protocol.address;
  mutable p_conn : Client.conn option;
  mutable p_down_until : float;
      (** wall-clock deadline before which we don't re-dial *)
}

let ring_vnodes = 64
let peer_down_secs = 5.0
let peer_rcv_timeout = 2.0

(* [ring] is every peer's virtual points sorted; a key goes to the
   first point at or after its own digest, wrapping past the end. *)
let ring_of peers =
  let points =
    List.concat
      (List.mapi
         (fun i p ->
           List.init ring_vnodes (fun v ->
               (Digest.string (Printf.sprintf "%s\x00%d" p.p_name v), i)))
         peers)
  in
  Array.of_list
    (List.sort (fun (a, _) (b, _) -> String.compare a b) points)

let route ring key =
  let n = Array.length ring in
  if n = 0 then None
  else begin
    let h = Digest.string key in
    (* First point >= h, else wrap to the smallest point. *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if String.compare (fst ring.(mid)) h < 0 then lo := mid + 1
      else hi := mid
    done;
    Some (snd ring.(if !lo = n then 0 else !lo))
  end

let peer_fail p =
  (match p.p_conn with Some c -> Client.close c | None -> ());
  p.p_conn <- None;
  p.p_down_until <- Unix.gettimeofday () +. peer_down_secs;
  Telemetry.record_peer_failure ()

let peer_conn p =
  match p.p_conn with
  | Some c -> Some c
  | None ->
      if Unix.gettimeofday () < p.p_down_until then None
      else (
        match Client.connect ~rcv_timeout:peer_rcv_timeout p.p_addr with
        | c ->
            p.p_conn <- Some c;
            Some c
        | exception _ ->
            p.p_down_until <- Unix.gettimeofday () +. peer_down_secs;
            Telemetry.record_peer_failure ();
            None)

let peer_store peers =
  let peers = Array.of_list peers in
  let ring = ring_of (Array.to_list peers) in
  let target key = Option.map (Array.get peers) (route ring key) in
  {
    C.Unit.st_name = "peer";
    st_get =
      (fun key ->
        match target key with
        | None -> None
        | Some p -> (
            match peer_conn p with
            | None ->
                Telemetry.record_peer_miss ();
                None
            | Some c -> (
                match Client.cache_get c ~key with
                | Some data ->
                    Telemetry.record_peer_hit ();
                    Some data
                | None ->
                    Telemetry.record_peer_miss ();
                    None
                | exception _ ->
                    peer_fail p;
                    Telemetry.record_peer_miss ();
                    None)));
    st_put =
      (fun key data ->
        match target key with
        | None -> ()
        | Some p -> (
            match peer_conn p with
            | None -> ()
            | Some c -> (
                try ignore (Client.cache_put c ~key ~data)
                with _ -> peer_fail p)));
  }

let create ?fuel ?disk ?(peers = []) ?unit_cache_capacity ?profile () =
  let t =
    { fuel; profile;
      cache = C.Unit.create_cache ?capacity:unit_cache_capacity ();
      sessions = [] }
  in
  let stores =
    (match disk with None -> [] | Some d -> [ C.Unit.disk_store d ])
    @
    match peers with
    | [] -> []
    | ps ->
        [ peer_store
            (List.map
               (fun (name, addr) ->
                 { p_name = name; p_addr = addr; p_conn = None;
                   p_down_until = 0. })
               ps) ]
  in
  (match stores with [] -> () | _ -> C.Unit.set_stores t.cache stores);
  t

let config_of ?profile ~prelude ~global_models ~backend () =
  let module Cfg = C.Session.Config in
  let cfg =
    Cfg.default
    |> Cfg.with_resolution
         (if global_models then C.Resolution.Global else C.Resolution.Lexical)
    |> Cfg.with_backend backend
    (* Only guided sessions are keyed on the profile: other backends
       ignore it, and folding it into their keys would split otherwise
       identical warm sessions for nothing. *)
    |> Cfg.with_profile
         (if backend = C.Backend.Guided then profile else None)
  in
  if prelude then Cfg.with_standard_prelude cfg else cfg

let session_for t cfg =
  match List.assoc_opt cfg t.sessions with
  | Some s -> s
  | None ->
      let s = C.Session.of_config ~cache:t.cache cfg in
      t.sessions <- (cfg, s) :: t.sessions;
      s

let cache_stats t = C.Unit.stats t.cache

let warm t =
  ignore
    (session_for t
       (config_of ~prelude:true ~global_models:false
          ~backend:C.Backend.Dict ()))

(* The check/translate payloads mirror the run payload's envelope
   ({"file", "ok", ..., "diagnostics"}) so clients can switch on the
   same fields for every kind. *)

let check_payload s ~file source =
  match Diag.protect (fun () -> C.Session.typecheck ~file s source) with
  | Ok ty ->
      Json.Obj
        [ ("file", Json.Str file); ("ok", Json.Bool true);
          ("type", Json.Str (C.Pretty.ty_to_string ty));
          ("diagnostics", Json.List []) ]
  | Error d -> C.Jsonview.json_of_failure ~file d

let translate_payload s ~file source =
  match Diag.protect (fun () -> C.Session.translate ~file s source) with
  | Ok f ->
      Json.Obj
        [ ("file", Json.Str file); ("ok", Json.Bool true);
          ("systemf", Json.Str (Fg_systemf.Pretty.exp_to_string f));
          ("diagnostics", Json.List []) ]
  | Error d -> C.Jsonview.json_of_failure ~file d

(* Execute one program-shaped request; Stats/Shutdown (answered by the
   pool) and CacheGet/CachePut/FuzzBatch plus the workspace kinds
   (answered directly by the server's reader thread) must not reach
   here. *)
let handle t (req : Protocol.request) : Protocol.status * string =
  let file = req.file in
  match req.kind with
  | Protocol.Stats | Protocol.Shutdown | Protocol.CacheGet
  | Protocol.CachePut | Protocol.FuzzBatch | Protocol.DocOpen
  | Protocol.DocChange | Protocol.DocClose | Protocol.DocDiagnostics
  | Protocol.Hover | Protocol.Definition | Protocol.Completion ->
      Diag.ice "control request %s reached a worker handler"
        (Protocol.kind_name req.kind)
  | Protocol.FuzzOne ->
      let cfg =
        { C.Fuzz.seed = req.seed; count = 1; size = max 1 req.size;
          mutants = max 0 req.mutants; backend = req.backend;
          profile = None; guided = false; corpus_dir = None }
      in
      let report = C.Fuzz.run ~domains:1 cfg in
      let status =
        if report.C.Fuzz.r_failures = [] then Protocol.Ok_
        else Protocol.Failed
      in
      (status, Json.to_string (C.Fuzz.report_to_json report))
  | Protocol.Check | Protocol.Run | Protocol.Translate -> (
      let profile =
        (* A request's own profile wins over the server default. *)
        match req.Protocol.profile with
        | Some _ as p -> p
        | None -> t.profile
      in
      let s =
        session_for t
          (config_of ?profile ~prelude:req.prelude
             ~global_models:req.global_models ~backend:req.backend ())
      in
      match req.kind with
      | Protocol.Check ->
          let payload = check_payload s ~file req.source in
          let ok = Json.bool_field "ok" payload = Some true in
          ((if ok then Protocol.Ok_ else Protocol.Failed),
           Json.to_string payload)
      | Protocol.Translate ->
          let payload = translate_payload s ~file req.source in
          let ok = Json.bool_field "ok" payload = Some true in
          ((if ok then Protocol.Ok_ else Protocol.Failed),
           Json.to_string payload)
      | _ ->
          (* Run: the recovering full pipeline, rendered by the same
             code path as one-shot `fgc run --format=json`. *)
          let report =
            C.Session.run_full ~file ?fuel:t.fuel s req.source
          in
          let payload = C.Jsonview.json_of_run_report ~file report in
          let status =
            match report.C.Session.outcome with
            | Some _ -> Protocol.Ok_
            | None -> Protocol.Failed
          in
          (status, Json.to_string payload))

(* Defensive wrapper: a worker must survive anything a request throws,
   including non-diagnostic exceptions from deep inside the pipeline. *)
let handle_safe t req =
  match handle t req with
  | result -> result
  | exception Diag.Error d ->
      (Protocol.Failed,
       Json.to_string (C.Jsonview.json_of_failure ~file:req.Protocol.file d))
  | exception exn ->
      ( Protocol.Failed,
        Protocol.error_payload ~file:req.Protocol.file ~code:"FG0901"
          "uncaught exception while serving request: %s"
          (Printexc.to_string exn) )
