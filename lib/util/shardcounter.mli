(** Per-domain sharded atomic counters — the metrics spine.

    One logical counter is a small array of [Atomic.t] shards; an
    increment touches the shard picked by the current domain's id, so
    parallel domains almost always hit different cache lines and the
    hot path is one uncontended atomic add with no locks and no
    allocation.  Reads merge the shards and are racy with respect to
    concurrent increments, which is fine for monitoring — callers that
    need exact numbers read in a sequential phase.

    This is the single implementation of the sharding trick: both the
    {!Coverage} probe registry and the {!Telemetry} counters (and the
    server pool's metrics grid) are built on it.  The sorted
    association-list "map" type and its merge algebra live here too,
    shared by coverage maps and workload profiles. *)

val n_shards : int
(** Number of shards per counter (a power of two; the shard pick is a
    mask over the domain id). *)

type t
(** One sharded counter.  Cheap to bump from any domain. *)

val create : unit -> t

val incr : t -> unit
(** Add one to the current domain's shard.  Lock-free. *)

val decr : t -> unit
(** Subtract one.  The merged total stays correct even when the
    decrement lands on a different shard than the increment it undoes
    (individual shards may go negative). *)

val add : t -> int -> unit
(** Add an arbitrary delta (e.g. accumulated nanoseconds). *)

val read : t -> int
(** Merge the shards into the logical value.  Racy snapshot. *)

val reset : t -> unit
(** Zero every shard.  Concurrent increments during a reset may land
    on either side. *)

type map = (string * int) list
(** A counter map: association list sorted by key, every count
    positive.  All functions below maintain that invariant. *)

val combine : (int -> int -> int) -> map -> map -> map
(** Merge two sorted maps with a combining function; entries that
    combine to [<= 0] are dropped, preserving the invariant.  Missing
    keys combine against 0. *)

val merge : map -> map -> map
(** Pointwise sum; the fleet-merge operation. *)

val diff : map -> map -> map
(** [diff later earlier]: keys whose count grew, with the growth. *)

val distinct : map -> int
val total : map -> int
val keys : map -> string list

module Registry : sig
  (** A named set of sharded counters keyed by string.  Registration
      swaps an immutable map in with a CAS loop — rare; hits never
      touch the registry.  {!Coverage} wraps the process-wide instance
      of this; workload profiles keep their own private instances so
      instantiation-frequency keys never pollute fuzz coverage. *)

  type counter = t

  type t

  val create : unit -> t

  val find : t -> string -> counter
  (** Register (or find) the counter named [key].  Thread-safe; both
      racers get the same counter. *)

  val hit : t -> string -> unit
  (** [hit r key] is [incr (find r key)]. *)

  val add : t -> string -> int -> unit

  val snapshot : t -> map
  (** Merge every counter into a sorted map; zero-count entries are
      dropped, so an untouched registry snapshots to []. *)

  val reset : t -> unit
  (** Zero every counter (registration survives). *)
end
