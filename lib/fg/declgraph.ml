(** Dependency analysis over declaration spines (see the interface).

    The scheme is deliberately over-approximate: every identifier
    occurring anywhere in a declaration — referenced names and binder
    names alike — counts as a reference, and the reference/concept sets
    of a unit's dependencies are folded into its own.  Extra edges only
    cost cache reuse; a missed edge would let {!Unit} replay a stale
    unit, so every place the checker can observe the enclosing scope
    must be covered:

    - name lookups (term variables, concepts, named models, aliases)
      are syntactic occurrences, including the ones a model inherits
      from its concept's default member bodies (hence the transitive
      reference closure);
    - binder names are included because shadowing is itself observable
      (FG0205 rejects a binder that shadows an in-scope type variable,
      FG0701 warns on model shadowing);
    - model resolution consults every model of a concept in scope, so a
      unit depends on every earlier unit contributing a model of any
      concept in its transitive concept-interest closure;
    - the Global ablation's overlap check is order-dependent across all
      models, so under it every model-declaring unit depends on every
      earlier one. *)

open Fg_util
open Ast
module Sset = Names.Sset
module ISet = Set.Make (Int)

type info = {
  i_provides : Sset.t;
  i_refs : Sset.t;
  i_concepts : Sset.t;
  i_model_of : Sset.t;
  i_named : (string * string) list;
  i_using : string option;
  i_declares_model : bool;
}

(* ---------------------------------------------------------------- *)
(* Name collection                                                    *)

type acc = { refs : Sset.t; cons : Sset.t }

let empty_acc = { refs = Sset.empty; cons = Sset.empty }
let add_ref a x = { a with refs = Sset.add x a.refs }

(* Binder names under foralls: shadowing an in-scope alias is an
   FG0205 error, so the binder's name is an observation of scope. *)
let rec binders_of_ty = function
  | TBase _ | TVar _ -> Sset.empty
  | TArrow (args, ret) ->
      List.fold_left
        (fun acc t -> Sset.union acc (binders_of_ty t))
        (binders_of_ty ret) args
  | TTuple ts | TAssoc (_, ts, _) ->
      List.fold_left
        (fun acc t -> Sset.union acc (binders_of_ty t))
        Sset.empty ts
  | TList t -> binders_of_ty t
  | TForall (tvs, constrs, body) ->
      let inner =
        List.fold_left
          (fun acc c -> Sset.union acc (binders_of_constr c))
          (binders_of_ty body) constrs
      in
      Sset.union (Sset.of_list tvs) inner

and binders_of_constr = function
  | CModel (_, args) ->
      List.fold_left
        (fun acc t -> Sset.union acc (binders_of_ty t))
        Sset.empty args
  | CSame (a, b) -> Sset.union (binders_of_ty a) (binders_of_ty b)

let add_ty a t =
  let cs = concept_names t in
  {
    refs =
      Sset.union
        (Sset.union (ftv t) (binders_of_ty t))
        (Sset.union cs a.refs);
    cons = Sset.union cs a.cons;
  }

let add_constr a c =
  let cs = constr_concept_names c in
  {
    refs =
      Sset.union (ftv_constr c)
        (Sset.union (binders_of_constr c) (Sset.union cs a.refs));
    cons = Sset.union cs a.cons;
  }

let rec add_exp a (e : exp) =
  match e.desc with
  | Var x -> add_ref a x
  | Lit _ | Prim _ -> a
  | App (f, args) -> List.fold_left add_exp (add_exp a f) args
  | Abs (params, body) ->
      add_exp (List.fold_left (fun a (_, t) -> add_ty a t) a params) body
  | TyAbs (tvs, constrs, body) ->
      let a = { a with refs = Sset.union (Sset.of_list tvs) a.refs } in
      add_exp (List.fold_left add_constr a constrs) body
  | TyApp (f, tys) -> List.fold_left add_ty (add_exp a f) tys
  | Let (x, rhs, body) -> add_exp (add_exp (add_ref a x) rhs) body
  | Tuple es -> List.fold_left add_exp a es
  | Nth (e0, _) -> add_exp a e0
  | Fix (x, t, body) -> add_exp (add_ty (add_ref a x) t) body
  | If (c, t, f) -> add_exp (add_exp (add_exp a c) t) f
  | Member (c, args, _) ->
      let a = { refs = Sset.add c a.refs; cons = Sset.add c a.cons } in
      List.fold_left add_ty a args
  | ConceptDecl (d, body) -> add_exp (add_concept a d) body
  | ModelDecl (d, body) -> add_exp (add_model a d) body
  | Using (m, body) -> add_exp (add_ref a m) body
  | TypeAlias (t, ty, body) -> add_exp (add_ty (add_ref a t) ty) body

and add_concept a (d : concept_decl) =
  let a =
    {
      a with
      refs =
        Sset.union
          (Sset.of_list (d.c_params @ d.c_assoc))
          (Sset.add d.c_name a.refs);
    }
  in
  let add_capp a (c, tys) =
    let a = { refs = Sset.add c a.refs; cons = Sset.add c a.cons } in
    List.fold_left add_ty a tys
  in
  let a = List.fold_left add_capp a d.c_refines in
  let a = List.fold_left add_capp a d.c_requires in
  let a = List.fold_left (fun a (_, t) -> add_ty a t) a d.c_members in
  let a = List.fold_left (fun a (_, e) -> add_exp a e) a d.c_defaults in
  List.fold_left (fun a (x, y) -> add_ty (add_ty a x) y) a d.c_same

and add_model a (d : model_decl) =
  let a =
    {
      refs = Sset.union (Sset.of_list d.m_params) (Sset.add d.m_concept a.refs);
      cons = Sset.add d.m_concept a.cons;
    }
  in
  let a = List.fold_left add_constr a d.m_constrs in
  let a = List.fold_left add_ty a d.m_args in
  let a = List.fold_left (fun a (_, t) -> add_ty a t) a d.m_assoc in
  List.fold_left (fun a (_, e) -> add_exp a e) a d.m_members

(* ---------------------------------------------------------------- *)
(* Per-declaration facts                                              *)

let info_of_decl (e : exp) : info =
  let base =
    {
      i_provides = Sset.empty;
      i_refs = Sset.empty;
      i_concepts = Sset.empty;
      i_model_of = Sset.empty;
      i_named = [];
      i_using = None;
      i_declares_model = false;
    }
  in
  let finish provides a extra =
    {
      extra with
      i_provides = provides;
      i_refs = a.refs;
      i_concepts = a.cons;
    }
  in
  match e.desc with
  | Let (x, rhs, _) ->
      finish (Sset.singleton x) (add_exp (add_ref empty_acc x) rhs) base
  | ConceptDecl (d, _) ->
      finish (Sset.singleton d.c_name) (add_concept empty_acc d) base
  | ModelDecl (d, _) ->
      let a = add_model empty_acc d in
      let provides, named, model_of =
        match d.m_name with
        | Some m -> (Sset.singleton m, [ (m, d.m_concept) ], Sset.empty)
        | None -> (Sset.empty, [], Sset.singleton d.m_concept)
      in
      finish provides
        (match d.m_name with Some m -> add_ref a m | None -> a)
        { base with i_named = named; i_model_of = model_of;
          i_declares_model = true }
  | Using (m, _) ->
      finish Sset.empty (add_ref empty_acc m) { base with i_using = Some m }
  | TypeAlias (t, ty, _) ->
      finish (Sset.singleton t) (add_ty (add_ref empty_acc t) ty) base
  | _ -> base

let is_decl (e : exp) =
  match e.desc with
  | Let _ | ConceptDecl _ | ModelDecl _ | Using _ | TypeAlias _ -> true
  | _ -> false

(* ---------------------------------------------------------------- *)
(* The graph                                                          *)

let build ~global (infos : info array) : int list array =
  let n = Array.length infos in
  let deps = Array.make n [] in
  let refstar = Array.make n Sset.empty in
  let closed = Array.make n Sset.empty in
  let eff_model_of = Array.make n Sset.empty in
  let providers : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let named_concept : (string, string) Hashtbl.t = Hashtbl.create 16 in
  (* Earlier units that contribute a model to scope, newest first. *)
  let model_units = ref [] in
  for k = 0 to n - 1 do
    let info = infos.(k) in
    let mo =
      match info.i_using with
      | Some m -> (
          match Hashtbl.find_opt named_concept m with
          | Some c -> Sset.add c info.i_model_of
          | None -> info.i_model_of)
      | None -> info.i_model_of
    in
    eff_model_of.(k) <- mo;
    let d = ref ISet.empty in
    let r = ref info.i_refs in
    let c = ref info.i_concepts in
    if global && info.i_declares_model then
      List.iter
        (fun j -> if infos.(j).i_declares_model then d := ISet.add j !d)
        !model_units;
    let changed = ref true in
    while !changed do
      changed := false;
      (* latest provider of every accumulated reference *)
      Sset.iter
        (fun nm ->
          match Hashtbl.find_opt providers nm with
          | Some j when not (ISet.mem j !d) ->
              d := ISet.add j !d;
              changed := true
          | _ -> ())
        !r;
      (* fold dependency closures into our own *)
      ISet.iter
        (fun j ->
          if not (Sset.subset refstar.(j) !r) then begin
            r := Sset.union refstar.(j) !r;
            changed := true
          end;
          if not (Sset.subset closed.(j) !c) then begin
            c := Sset.union closed.(j) !c;
            changed := true
          end)
        !d;
      (* every earlier model of an interesting concept is consultable *)
      List.iter
        (fun j ->
          if
            (not (ISet.mem j !d))
            && not (Sset.is_empty (Sset.inter eff_model_of.(j) !c))
          then begin
            d := ISet.add j !d;
            changed := true
          end)
        !model_units
    done;
    refstar.(k) <- !r;
    closed.(k) <- !c;
    deps.(k) <- ISet.elements !d;
    Sset.iter (fun nm -> Hashtbl.replace providers nm k) info.i_provides;
    List.iter (fun (m, c) -> Hashtbl.replace named_concept m c) info.i_named;
    if info.i_declares_model || not (Sset.is_empty mo) then
      model_units := k :: !model_units
  done;
  deps
