(** A small generic graph library written in FG: a [Graph] concept with
    an associated [vertex] type, models for adjacency-list and edge-list
    representations, and generic algorithms (degree, counts, has_edge,
    reachable, reachable_set, on_cycle, is_dag) usable at any model. *)

(** The [Graph] concept, FG source. *)
val concepts : string

(** Model for [list (int * list int)] (adjacency lists). *)
val adjacency_model : string

(** Model for [list int * list (int * int)] (vertex list + edge list). *)
val edge_list_model : string

(** The generic algorithms, FG source. *)
val algorithms : string

(** Prelude + concepts + both models + algorithms. *)
val full : string

(** [wrap body] — a complete program over the graph library. *)
val wrap : string -> string

(** Adjacency-list literal in concrete syntax. *)
val adj : (int * int list) list -> string

(** Edge-list literal (vertex list + source/target pairs). *)
val edges : int list -> (int * int) list -> string
