(** Random generation of well-typed FG programs.

    The property tests run the theorem harness ({!Theorems}) over
    thousands of generated programs; for that to be meaningful the
    generator must produce programs that are well-typed {e by
    construction} and that actually exercise the interesting machinery:
    concept hierarchies with refinement (including diamonds), associated
    types, models at several ground types, where clauses, member access
    through refinement, and instantiation.

    Shape of every generated program:

    + a random concept hierarchy (single-parameter concepts; refinement
      edges to earlier concepts, so the hierarchy is a DAG; each concept
      has 0–2 associated types and 1–3 members whose types are built
      from the parameter, the associated types, [int] and [bool]);
    + model declarations for one or two ground types, in topological
      order (every concept gets a model at each chosen ground type, so
      refinement requirements always resolve);
    + a generic function over one type parameter [t] with a random
      subset of the concepts as requirements (plus, sometimes, a
      same-type constraint pinning an associated type that the chosen
      instantiation satisfies);
    + an instantiation of the generic function at a ground type, applied
      to a ground argument.

    The generator is deterministic in its [Random.State]. *)

open Ast

type rng = Random.State.t

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

(* ------------------------------------------------------------------ *)
(* Ground types and their value generators                             *)

type ground = GInt | GBool | GListInt

let ground_ty = function
  | GInt -> TBase TInt
  | GBool -> TBase TBool
  | GListInt -> TList (TBase TInt)

let rec gen_ground_value rng = function
  | GInt -> int (Random.State.int rng 100)
  | GBool -> bool (Random.State.bool rng)
  | GListInt ->
      let n = Random.State.int rng 3 in
      List.fold_left
        (fun acc _ ->
          app (tyapp (prim "cons") [ TBase TInt ])
            [ gen_ground_value rng GInt; acc ])
        (tyapp (prim "nil") [ TBase TInt ])
        (List.init n Fun.id)

(* A simple value of a member's ground type: either a constant or a
   function built from constants and primitives. *)
let rec gen_value_of_ty rng (t : ty) : exp =
  match t with
  | TBase TInt -> int (Random.State.int rng 100)
  | TBase TBool -> bool (Random.State.bool rng)
  | TBase TUnit -> unit ()
  | TArrow (args, ret) ->
      let params = List.mapi (fun i t -> (Printf.sprintf "p%d" i, t)) args in
      let body =
        (* Sometimes use an int/bool parameter, otherwise a constant. *)
        let usable =
          List.filter (fun (_, pt) -> ty_equal pt ret) params
        in
        if usable <> [] && Random.State.bool rng then
          var (fst (pick rng usable))
        else gen_value_of_ty rng ret
      in
      abs params body
  | TTuple ts -> tuple (List.map (gen_value_of_ty rng) ts)
  | TList t -> app (tyapp (prim "cons") [ t ]) [ gen_value_of_ty rng t;
        tyapp (prim "nil") [ t ] ]
  | _ -> Fg_util.Diag.ice "gen: cannot generate value of this type"

(* ------------------------------------------------------------------ *)
(* Concept hierarchies                                                 *)

type gconcept = {
  g_name : string;
  g_params : string list;  (** one or two type parameters *)
  g_assoc : string list;
  g_refines : string list;  (** refined concept names; argument is [t] *)
  g_members : (string * ty) list;  (** types over TVar "t" and assoc names *)
  g_defaults : (string * exp) list;
      (** default bodies for some members with ground types *)
}

(* Member types mention the concept's parameters, its own associated
   types, and int/bool. *)
let gen_member_ty rng (params : string list) (assoc : string list) : ty =
  let opts = List.map (fun p -> TVar p) params @ [ TBase TInt; TBase TBool ]
             @ List.map (fun a -> TVar a) assoc in
  let atom () = pick rng opts in
  match Random.State.int rng 4 with
  | 0 -> atom () (* a constant member *)
  | 1 -> TArrow ([ atom () ], atom ())
  | 2 -> TArrow ([ atom (); atom () ], atom ())
  | _ -> TArrow ([ TVar (List.hd params) ], atom ())

let gen_hierarchy rng : gconcept list =
  let n = 1 + Random.State.int rng 4 in
  let param_counts = Array.init n (fun _ -> 1 + Random.State.int rng 2) in
  List.init n (fun i ->
      let name = Printf.sprintf "C%d" i in
      let params =
        List.init param_counts.(i) (fun k -> Printf.sprintf "p%d_%d" i k)
      in
      let n_assoc = Random.State.int rng 3 in
      let assoc = List.init n_assoc (fun j -> Printf.sprintf "a%d_%d" i j) in
      (* refine only earlier concepts; the refinement's arguments repeat
         this concept's first parameter, so a model at a uniform ground
         instantiation always finds its refined models *)
      let refines =
        List.init i (fun j -> Printf.sprintf "C%d" j)
        |> List.filter (fun _ -> Random.State.int rng 3 = 0)
      in
      let n_members = 1 + Random.State.int rng 3 in
      let members =
        List.init n_members (fun j ->
            (Printf.sprintf "m%d_%d" i j, gen_member_ty rng params assoc))
      in
      (* Members whose types mention neither the parameter nor the
         associated types can carry a synthesized default body. *)
      let defaults =
        List.filter_map
          (fun (x, ty) ->
            if
              Fg_util.Names.Sset.is_empty (ftv ty)
              && Random.State.int rng 4 = 0
            then Some (x, gen_value_of_ty rng ty)
            else None)
          members
      in
      {
        g_name = name;
        g_params = params;
        g_assoc = assoc;
        g_refines = refines;
        g_members = members;
        g_defaults = defaults;
      })

(* A refinement of an n-ary concept repeats the refining concept's
   first parameter n times. *)
let refine_args (hier : gconcept list) (g : gconcept) (c : string) : ty list =
  let target = List.find (fun g' -> g'.g_name = c) hier in
  List.map (fun _ -> TVar (List.hd g.g_params)) target.g_params

let concept_decl_of_g (hier : gconcept list) (g : gconcept) : concept_decl =
  {
    c_name = g.g_name;
    c_params = g.g_params;
    c_assoc = g.g_assoc;
    c_refines = List.map (fun c -> (c, refine_args hier g c)) g.g_refines;
    c_requires = [];
    c_members = g.g_members;
    c_defaults = g.g_defaults;
    c_same = [];
    c_loc = Fg_util.Loc.dummy;
  }

(* ------------------------------------------------------------------ *)
(* Models                                                              *)

(* For every concept and every chosen ground type, build a model.  The
   associated types are assigned random ground types; member values are
   synthesized at the type obtained by substituting the ground type for
   [t] and the assignments for the associated names. *)
type gmodel = {
  gm_concept : string;
  gm_ground : ground;
  gm_assoc : (string * ground) list;
}

let gen_models rng (hier : gconcept list) (grounds : ground list) :
    (gmodel * model_decl) list =
  List.concat_map
    (fun g ->
      List.map
        (fun ground ->
          let assoc =
            List.map
              (fun s ->
                ( s,
                  match Random.State.int rng 3 with
                  | 0 -> GInt
                  | 1 -> GBool
                  | _ -> GListInt ))
              g.g_assoc
          in
          let subst =
            List.map (fun p -> (p, ground_ty ground)) g.g_params
            @ List.map (fun (s, gr) -> (s, ground_ty gr)) assoc
          in
          let members =
            List.filter_map
              (fun (x, ty) ->
                if
                  List.mem_assoc x g.g_defaults && Random.State.bool rng
                then None (* rely on the default *)
                else Some (x, gen_value_of_ty rng (subst_ty_list subst ty)))
              g.g_members
          in
          ( { gm_concept = g.g_name; gm_ground = ground; gm_assoc = assoc },
            {
              m_name = None;
              m_params = [];
              m_constrs = [];
              m_concept = g.g_name;
              m_args = List.map (fun _ -> ground_ty ground) g.g_params;
              m_assoc = List.map (fun (s, gr) -> (s, ground_ty gr)) assoc;
              m_members = members;
              m_loc = Fg_util.Loc.dummy;
            } ))
        grounds)
    hier

(* ------------------------------------------------------------------ *)
(* Generic-function bodies                                             *)

(* Inside the generic function the typing context is: parameter [x : t];
   the where clause's concepts with their members; associated types are
   opaque unless pinned by a same-type constraint.  We generate an
   expression of a target type, using member accesses as producers. *)

type body_ctx = {
  rng : rng;
  reqs : gconcept list;  (** concepts required (incl. transitives) *)
  pinned : (string * string * ty) list;
      (** (concept, assoc name, pinned ground type) from CSame constraints *)
  depth : int;
}

(* The FG type, inside the function, of a member type as written in the
   concept: substitute every concept parameter by the binder [t] (the
   where clause requires C<t, ..., t>) and qualify associated names. *)
let concept_args (g : gconcept) = List.map (fun _ -> TVar "t") g.g_params

let qualify (g : gconcept) (ty : ty) : ty =
  subst_ty_list
    (List.map (fun p -> (p, TVar "t")) g.g_params
    @ List.map (fun s -> (s, TAssoc (g.g_name, concept_args g, s))) g.g_assoc)
    ty

(* All producers: members, with their in-scope types. *)
let producers (ctx : body_ctx) : (string * ty list * string * ty) list =
  List.concat_map
    (fun g ->
      List.map
        (fun (x, ty) -> (g.g_name, concept_args g, x, qualify g ty))
        g.g_members)
    ctx.reqs

(* Does [ty] match the hole type up to pinned same-type equalities?  We
   only chase one level: a pinned projection equals its ground type. *)
let rec hole_equal (ctx : body_ctx) (a : ty) (b : ty) : bool =
  ty_equal (resolve_pin ctx a) (resolve_pin ctx b)

and resolve_pin ctx = function
  | TAssoc (c, args, s) as t
    when List.for_all (function TVar "t" -> true | _ -> false) args -> (
      match
        List.find_opt (fun (c', s', _) -> c = c' && s = s') ctx.pinned
      with
      | Some (_, _, g) -> g
      | None -> t)
  | t -> t

(* A type is fillable when we can always construct a value of it:
   base types and [t] trivially; a projection if it is pinned, if some
   constant member has it, or if some member is a function to it from
   base/[t] argument types only (so the recursion terminates). *)
let fillable (ctx : body_ctx) (hole : ty) : bool =
  let safe = function
    | TBase _ | TVar "t" -> true
    | t -> ( match resolve_pin ctx t with TBase _ | TVar "t" -> true | _ -> false)
  in
  match resolve_pin ctx hole with
  | TBase _ | TVar "t" -> true
  | h ->
      List.exists
        (fun (_, _, _, ty) ->
          match ty with
          | _ when hole_equal ctx ty h -> true
          | TArrow (args, ret) ->
              hole_equal ctx ret h && List.for_all safe args
          | _ -> false)
        (producers ctx)

let rec gen_body (ctx : body_ctx) (hole : ty) : exp =
  let ctx' = { ctx with depth = ctx.depth + 1 } in
  let hole_r = resolve_pin ctx hole in
  let atoms =
    (* Base cases: always available. *)
    (match hole_r with
    | TBase TInt -> [ (fun () -> int (Random.State.int ctx.rng 100)) ]
    | TBase TBool -> [ (fun () -> bool (Random.State.bool ctx.rng)) ]
    | TBase TUnit -> [ (fun () -> unit ()) ]
    | TVar "t" -> [ (fun () -> var "x") ]
    | _ -> [])
    @ (* Constant members of the hole type. *)
    List.filter_map
      (fun (c, cargs, x, ty) ->
        if hole_equal ctx ty hole then Some (fun () -> member c cargs x)
        else None)
      (producers ctx)
  in
  let deep = ctx.depth > 4 in
  let safe_arg t =
    match resolve_pin ctx t with TBase _ | TVar "t" -> true | _ -> false
  in
  (* Applications of members returning the hole type, provided every
     argument hole can itself be filled.  Past the depth cutoff only
     members with base/parameter arguments remain, which bounds the
     recursion. *)
  let member_apps =
    List.filter_map
      (fun (c, cargs, x, ty) ->
        match ty with
        | TArrow (args, ret)
          when hole_equal ctx ret hole
               && List.for_all (fillable ctx) args
               && ((not deep) || List.for_all safe_arg args) ->
            Some
              (fun () ->
                app (member c cargs x) (List.map (gen_body ctx') args))
        | _ -> None)
      (producers ctx)
  in
  let compounds =
    member_apps
    @
    if deep then []
    else
      [
        (fun () ->
          if_
            (gen_body ctx' (TBase TBool))
            (gen_body ctx' hole) (gen_body ctx' hole));
        (fun () ->
          let_ "y" (gen_body ctx' hole_r)
            (if Random.State.bool ctx.rng then var "y" else gen_body ctx' hole));
      ]
      @ (* arithmetic at int *)
      (match hole_r with
      | TBase TInt ->
          [
            (fun () ->
              app (prim (pick ctx.rng [ "iadd"; "imult"; "imin"; "imax" ]))
                [ gen_body ctx' (TBase TInt); gen_body ctx' (TBase TInt) ]);
          ]
      | TBase TBool ->
          [
            (fun () ->
              app (prim "ilt")
                [ gen_body ctx' (TBase TInt); gen_body ctx' (TBase TInt) ]);
          ]
      | _ -> [])
  in
  let choices =
    if atoms = [] then compounds
    else if compounds = [] || ctx.depth > 3 || Random.State.int ctx.rng 3 = 0
    then atoms
    else compounds
  in
  match choices with
  | [] ->
      Fg_util.Diag.ice "gen: no way to fill hole of type %s"
        (Pretty.ty_to_string hole)
  | cs -> (pick ctx.rng cs) ()

(* Target types for the generic function's result: t, int, bool, or a
   producible projection. *)
let gen_result_ty (ctx : body_ctx) : ty =
  let producible =
    List.filter_map
      (fun (_, _, _, ty) ->
        match ty with
        | TAssoc _ -> Some ty
        | TArrow (_, (TAssoc _ as ret)) -> Some ret
        | _ -> None)
      (producers ctx)
    |> List.filter (fillable ctx)
  in
  let options =
    [ TVar "t"; TBase TInt; TBase TBool ]
    @ (if producible = [] then [] else [ pick ctx.rng producible ])
  in
  pick ctx.rng options

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)

(* Transitive closure of refinement, in hierarchy order. *)
let closure (hier : gconcept list) (names : string list) : gconcept list =
  let by_name n = List.find (fun g -> g.g_name = n) hier in
  let rec add acc n =
    if List.exists (fun g -> g.g_name = n) acc then acc
    else
      let g = by_name n in
      List.fold_left add (g :: acc) g.g_refines
  in
  let all = List.fold_left add [] names in
  List.filter (fun g -> List.exists (fun g' -> g'.g_name = g.g_name) all) hier

let gen_program (rng : rng) : exp =
  let hier = gen_hierarchy rng in
  let grounds =
    match Random.State.int rng 3 with
    | 0 -> [ GInt ]
    | 1 -> [ GInt; GBool ]
    | _ -> [ GInt; GListInt ]
  in
  let models = gen_models rng hier grounds in
  (* Requirements: a nonempty subset of concepts. *)
  let req_names =
    match List.filter (fun _ -> Random.State.bool rng) hier with
    | [] -> [ (pick rng hier).g_name ]
    | gs -> List.map (fun g -> g.g_name) gs
  in
  let reqs = closure hier req_names in
  (* The instantiation ground type. *)
  let inst = pick rng grounds in
  (* Optionally pin associated types with same-type constraints that the
     instantiation's models satisfy. *)
  let pinned =
    List.concat_map
      (fun g ->
        List.filter_map
          (fun s ->
            if Random.State.int rng 3 = 0 then
              let gm =
                List.find
                  (fun (gm, _) ->
                    gm.gm_concept = g.g_name && gm.gm_ground = inst)
                  models
                |> fst
              in
              let pinned_ground = List.assoc s gm.gm_assoc in
              Some (g.g_name, s, ground_ty pinned_ground)
            else None)
          g.g_assoc)
      reqs
  in
  let ctx = { rng; reqs; pinned; depth = 0 } in
  let result_ty = gen_result_ty ctx in
  let body = gen_body ctx result_ty in
  let args_of name =
    concept_args (List.find (fun g -> g.g_name = name) hier)
  in
  let constrs =
    List.map (fun n -> CModel (n, args_of n)) req_names
    @ List.map
        (fun (c, s, g) -> CSame (TAssoc (c, args_of c, s), g))
        pinned
  in
  let generic = tyabs [ "t" ] constrs (abs [ ("x", TVar "t") ] body) in
  (* Assemble: concepts, models (in concept order, per ground), generic,
     call. *)
  let call =
    (* The generic's parameter type is [t], so its type argument is
       always inferable from the argument — exercise implicit
       instantiation on a third of the programs. *)
    if Random.State.int rng 3 = 0 then
      app (var "f") [ gen_ground_value rng inst ]
    else
      app (tyapp (var "f") [ ground_ty inst ]) [ gen_ground_value rng inst ]
  in
  let with_models =
    List.fold_right
      (fun (_, md) acc -> model_decl md acc)
      models
      (let_ "f" generic call)
  in
  List.fold_right
    (fun g acc -> concept_decl (concept_decl_of_g hier g) acc)
    hier with_models

(** Generate a program from an integer seed (deterministic). *)
let program_of_seed seed = gen_program (Random.State.make [| seed |])
