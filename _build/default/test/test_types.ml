(* White-box tests of the type-level machinery (lib/fg/types.ml): the
   paper's ba/b/bw/bm functions, dictionary layout, plan shapes, and
   type translation — checked directly against hand-computed results. *)

open Fg_core
module T = Types
module F = Fg_systemf.Ast

let ty = Parser.ty_of_string

(* An environment with the iterator-flavoured concept stack:
     Eq<t>           { eq }
     Ord<t>          { refines Eq; less }
     Iterator<i>     { types elt; next, curr, at_end }
     Fancy<i>        { types pos; refines Iterator<i>, Ord<Fancy<i>.pos... } *)
let env_with src =
  let e = Parser.exp_of_string (src ^ " 0") in
  (* walk the concept declarations, building the environment *)
  let rec go env (e : Ast.exp) =
    match e.Ast.desc with
    | Ast.ConceptDecl (d, body) -> go (Env.bind_concept env d) body
    | _ -> env
  in
  go (Env.create ()) e

let stack =
  {|concept Eq<t> { eq : fn(t, t) -> bool; } in
concept Ord<t> { refines Eq<t>; less : fn(t, t) -> bool; } in
concept Iterator<i> { types elt; next : fn(i) -> i; curr : fn(i) -> elt; at_end : fn(i) -> bool; } in
concept Pair<a, b> { fst_ : a; snd_ : b; } in
|}

let env = env_with stack

let test_assoc_scope () =
  let scope = T.assoc_scope env ("Iterator", [ ty "list int" ]) in
  Alcotest.(check int) "one assoc" 1 (List.length scope);
  let name, proj = List.hd scope in
  Alcotest.(check string) "name" "elt" name;
  Alcotest.(check string) "qualified projection" "Iterator<list int>.elt"
    (Pretty.ty_to_string proj)

let test_instantiation_subst () =
  let s = T.instantiation_subst env ("Iterator", [ ty "bool" ]) in
  (* parameter i -> bool, assoc elt -> Iterator<bool>.elt *)
  Alcotest.(check string) "param" "bool"
    (Pretty.ty_to_string (List.assoc "i" s));
  Alcotest.(check string) "assoc" "Iterator<bool>.elt"
    (Pretty.ty_to_string (List.assoc "elt" s))

let test_refinements () =
  Alcotest.(check (list string)) "Ord refines Eq at the same arg"
    [ "Eq<int>" ]
    (List.map
       (fun (c, args) -> Pretty.constr_to_string (Ast.CModel (c, args)))
       (T.refinements env ("Ord", [ ty "int" ])));
  Alcotest.(check int) "Eq refines nothing" 0
    (List.length (T.refinements env ("Eq", [ ty "int" ])))

let test_member_lookup_paths () =
  (* Ord's own member: after the 1 refinement slot -> index 1 *)
  (match T.member_lookup env ("Ord", [ ty "int" ]) "less" with
  | Some (t, path) ->
      Alcotest.(check string) "type" "fn(int, int) -> bool"
        (Pretty.ty_to_string t);
      Alcotest.(check (list int)) "own member path" [ 1 ] path
  | None -> Alcotest.fail "less not found");
  (* inherited member: through refinement 0, then Eq's member 0 *)
  (match T.member_lookup env ("Ord", [ ty "int" ]) "eq" with
  | Some (_, path) -> Alcotest.(check (list int)) "inherited path" [ 0; 0 ] path
  | None -> Alcotest.fail "eq not found");
  (* missing member *)
  Alcotest.(check bool) "missing" true
    (T.member_lookup env ("Ord", [ ty "int" ]) "ghost" = None);
  (* member type uses the assoc projection *)
  match T.member_lookup env ("Iterator", [ ty "bool" ]) "curr" with
  | Some (t, path) ->
      Alcotest.(check string) "curr type" "fn(bool) -> Iterator<bool>.elt"
        (Pretty.ty_to_string t);
      Alcotest.(check (list int)) "curr path" [ 1 ] path
  | None -> Alcotest.fail "curr not found"

let test_all_members () =
  let ms = T.all_members env ("Ord", [ ty "int" ]) in
  Alcotest.(check (list string)) "own first, then inherited"
    [ "less"; "eq" ]
    (List.map (fun (x, _, _) -> x) ms)

let test_process_where_plan () =
  let env', plan =
    T.process_where env [ "i" ]
      [ Ast.CModel ("Iterator", [ Ast.TVar "i" ]) ]
  in
  (* one requirement -> one dictionary; one assoc -> one slot *)
  Alcotest.(check int) "one dict" 1 (List.length plan.T.p_dicts);
  Alcotest.(check int) "one slot" 1 (List.length plan.T.p_slots);
  let _, (c, _, s) = List.hd plan.T.p_slots in
  Alcotest.(check string) "slot concept" "Iterator" c;
  Alcotest.(check string) "slot assoc" "elt" s;
  (* the proxy model is in scope in env' *)
  Alcotest.(check bool) "proxy in scope" true
    (Env.lookup_model env' "Iterator" [ Ast.TVar "i" ] <> None);
  (* dictionary type: (fn(i)->i) * (fn(i)->slot) * (fn(i)->bool) *)
  let _, _, dty = List.hd plan.T.p_dicts in
  match dty with
  | F.TTuple [ F.TArrow ([ F.TVar "i" ], F.TVar "i"); _; _ ] -> ()
  | _ ->
      Alcotest.failf "unexpected dict type %s"
        (Fg_systemf.Pretty.ty_to_string dty)

let test_plan_refinement_closure () =
  let _, plan =
    T.process_where env [ "t" ] [ Ast.CModel ("Ord", [ Ast.TVar "t" ]) ]
  in
  (* Ord has no assoc; neither does Eq: no slots, one dict *)
  Alcotest.(check int) "no slots" 0 (List.length plan.T.p_slots);
  Alcotest.(check int) "one dict" 1 (List.length plan.T.p_dicts);
  let _, _, dty = List.hd plan.T.p_dicts in
  (* nested: ((eq), less) *)
  match dty with
  | F.TTuple [ F.TTuple [ _ ]; _ ] -> ()
  | _ ->
      Alcotest.failf "unexpected Ord dict %s"
        (Fg_systemf.Pretty.ty_to_string dty)

let test_dict_type_multi_param () =
  let env', _ =
    T.process_where env [ "a"; "b" ]
      [ Ast.CModel ("Pair", [ Ast.TVar "a"; Ast.TVar "b" ]) ]
  in
  let dty = T.dict_type env' ("Pair", [ Ast.TVar "a"; Ast.TVar "b" ]) in
  match dty with
  | F.TTuple [ F.TVar "a"; F.TVar "b" ] -> ()
  | _ ->
      Alcotest.failf "unexpected Pair dict %s"
        (Fg_systemf.Pretty.ty_to_string dty)

let test_wf_rejects () =
  (* TYASC without a model *)
  (match
     Fg_util.Diag.protect (fun () ->
         T.wf_ty env (ty "Iterator<list int>.elt"))
   with
  | Ok () -> Alcotest.fail "expected wf failure"
  | Error d -> Alcotest.(check bool) "wf" true (d.phase = Fg_util.Diag.Wf));
  (* unknown assoc name *)
  let env', _ =
    T.process_where env [ "i" ] [ Ast.CModel ("Iterator", [ Ast.TVar "i" ]) ]
  in
  match
    Fg_util.Diag.protect (fun () -> T.wf_ty env' (ty "Iterator<i>.ghost"))
  with
  | Ok () -> Alcotest.fail "expected wf failure"
  | Error d ->
      Alcotest.(check bool) "no such assoc" true
        (Astring_contains.contains ~needle:"no associated type" d.message)

let test_translate_ty_forall () =
  (* forall i where Iterator<i>. fn(i) -> Iterator<i>.elt
     ==> forall i elt'. fn(dict) -> fn(i) -> elt' *)
  let t =
    ty "forall i where Iterator<i>. fn(i) -> Iterator<i>.elt"
  in
  match T.translate_ty env t with
  | F.TForall ([ i; slot ], F.TArrow ([ _dict ], F.TArrow ([ F.TVar i' ], F.TVar r)))
    ->
      Alcotest.(check string) "binder" "i" i;
      Alcotest.(check string) "param uses binder" i i';
      Alcotest.(check string) "result uses the slot" slot r
  | ft ->
      Alcotest.failf "unexpected translation %s"
        (Fg_systemf.Pretty.ty_to_string ft)

let test_translate_ty_unconstrained () =
  match T.translate_ty env (ty "forall a. fn(a) -> a") with
  | F.TForall ([ "a" ], F.TArrow ([ F.TVar "a" ], F.TVar "a")) -> ()
  | ft ->
      Alcotest.failf "unexpected %s" (Fg_systemf.Pretty.ty_to_string ft)

let suite =
  [
    Alcotest.test_case "assoc_scope (ba)" `Quick test_assoc_scope;
    Alcotest.test_case "instantiation_subst" `Quick test_instantiation_subst;
    Alcotest.test_case "refinements" `Quick test_refinements;
    Alcotest.test_case "member_lookup paths (b)" `Quick
      test_member_lookup_paths;
    Alcotest.test_case "all_members ordering" `Quick test_all_members;
    Alcotest.test_case "process_where plan (bw/bm)" `Quick
      test_process_where_plan;
    Alcotest.test_case "refinement closure in dict" `Quick
      test_plan_refinement_closure;
    Alcotest.test_case "multi-param dict type" `Quick
      test_dict_type_multi_param;
    Alcotest.test_case "wf rejections" `Quick test_wf_rejects;
    Alcotest.test_case "translate constrained forall" `Quick
      test_translate_ty_forall;
    Alcotest.test_case "translate plain forall" `Quick
      test_translate_ty_unconstrained;
  ]
