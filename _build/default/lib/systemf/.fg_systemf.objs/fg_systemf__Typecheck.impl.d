lib/systemf/typecheck.ml: Ast Diag Fg_util List Names Pretty Prims Printf
