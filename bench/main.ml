(* Benchmark harness: one Bechamel test per row of DESIGN.md's
   experiment index (E1–E9 paper artifacts, B1–B5 scaling rows).

   The paper has no performance evaluation, so there are no
   paper-vs-measured numbers to match; these benches measure OUR
   implementation and back the shape claims recorded in EXPERIMENTS.md
   (near-linear congruence closure, dictionary-passing overhead vs the
   explicit-argument and monomorphic baselines, scaling in refinement
   depth / model count / where width).

   Run:  dune exec bench/main.exe            (full, ~1 min)
         BENCH_QUOTA=0.05 dune exec bench/main.exe   (quick smoke)

   Output: one line per bench (ns/run from an OLS fit against run
   count), grouped by experiment id, followed by a deterministic
   step-count table for the dictionary-overhead experiment (B3). *)

open Bechamel
open Toolkit
module C = Fg_core
module F = Fg_systemf

let quota =
  match Sys.getenv_opt "BENCH_QUOTA" with
  | Some s -> ( try float_of_string s with _ -> 0.5)
  | None -> 0.5

(* ---------------------------------------------------------------- *)
(* Workload constructors (precomputed outside the timed region)      *)

let fg_parse src = C.Parser.exp_of_string src
let fg_check ast = ignore (C.Check.typecheck ast)
let fg_translate ast = C.Check.translate ast

let staged_pipeline name src =
  Test.make ~name (Staged.stage (fun () -> ignore (C.Pipeline.run src)))

let staged_typecheck name src =
  let ast = fg_parse src in
  Test.make ~name (Staged.stage (fun () -> fg_check ast))

let staged_translate name src =
  let ast = fg_parse src in
  Test.make ~name (Staged.stage (fun () -> ignore (fg_translate ast)))

let staged_parse name src =
  Test.make ~name (Staged.stage (fun () -> ignore (fg_parse src)))

let staged_f_eval name f =
  Test.make ~name (Staged.stage (fun () -> ignore (F.Eval.run f)))

let staged_fg_interp name ast =
  Test.make ~name (Staged.stage (fun () -> ignore (C.Interp.run_program ast)))

(* ---------------------------------------------------------------- *)
(* E1/E2/E3/E4: paper figures through the pipeline                   *)

let fig_tests =
  [
    staged_pipeline "fig1/square_fg" C.Corpus.fig1_square.source;
    staged_pipeline "fig1/square_higher_order"
      C.Corpus.fig1_square_higher_order.source;
    staged_pipeline "fig3/sum_systemf" C.Corpus.fig3_sum.source;
    staged_pipeline "fig5/accumulate" C.Corpus.fig5_accumulate.source;
    staged_pipeline "fig6/overlap" C.Corpus.fig6_overlap.source;
    staged_pipeline "fig7/dict_shape" C.Corpus.fig5_accumulate.source;
  ]

(* E3 decomposed: where does the pipeline spend its time? *)
let phase_tests =
  let src = C.Corpus.merge_example.source in
  let ast = fg_parse src in
  let f = fg_translate ast in
  [
    staged_parse "phase/parse(merge)" src;
    staged_typecheck "phase/typecheck(merge)" src;
    staged_translate "phase/translate(merge)" src;
    Test.make ~name:"phase/f_typecheck(merge)"
      (Staged.stage (fun () -> ignore (F.Typecheck.typecheck f)));
    staged_f_eval "phase/f_eval(merge)" f;
    staged_fg_interp "phase/fg_interp(merge)" ast;
  ]

(* E6/E7: the theorem harness itself *)
let theorem_tests =
  let fig5 = fg_parse C.Corpus.fig5_accumulate.source in
  let merge = fg_parse C.Corpus.merge_example.source in
  [
    Test.make ~name:"thm1/translate_check(fig5)"
      (Staged.stage (fun () -> ignore (C.Theorems.check_translation fig5)));
    Test.make ~name:"thm2/assoc_check(merge)"
      (Staged.stage (fun () -> ignore (C.Theorems.check_translation merge)));
  ]

(* B1: typechecking cost vs program size *)
let scale_typecheck_tests =
  List.concat_map
    (fun n ->
      [
        staged_typecheck
          (Printf.sprintf "scale/typecheck_let_chain_%03d" n)
          (C.Genprog.let_chain n);
      ])
    [ 5; 20; 80 ]
  @ List.map
      (fun n ->
        staged_typecheck
          (Printf.sprintf "scale/typecheck_many_models_%03d" n)
          (C.Genprog.many_models n))
      [ 10; 40; 160 ]
  @ List.map
      (fun n ->
        staged_typecheck
          (Printf.sprintf "scale/typecheck_wide_where_%02d" n)
          (C.Genprog.wide_where n))
      [ 2; 8; 32 ]

(* B5: refinement depth (dictionary nesting) and diamonds *)
let scale_refine_tests =
  List.map
    (fun n ->
      staged_typecheck
        (Printf.sprintf "scale/refine_depth_%02d" n)
        (C.Genprog.refinement_chain n))
    [ 2; 8; 32 ]
  @ List.map
      (fun n ->
        staged_typecheck
          (Printf.sprintf "scale/refine_diamond_%02d" n)
          (C.Genprog.refinement_diamond n))
      [ 2; 4; 8 ]

(* B4/E8: congruence closure scaling *)
let eq_tests =
  List.map
    (fun n ->
      staged_typecheck
        (Printf.sprintf "eq/congruence_chain_%03d" n)
        (C.Genprog.same_type_chain n))
    [ 4; 16; 64 ]
  @ List.map
      (fun n ->
        staged_typecheck
          (Printf.sprintf "eq/assoc_chain_%02d" n)
          (C.Genprog.assoc_chain n))
      [ 2; 8; 24 ]
  @
  (* raw equality queries on a chain of assumptions *)
  let raw n =
    let eq =
      List.fold_left
        (fun eq i ->
          C.Equality.assume eq
            (C.Ast.TVar (Printf.sprintf "t%d" i))
            (C.Ast.TVar (Printf.sprintf "t%d" (i + 1))))
        C.Equality.empty
        (List.init n (fun i -> i))
    in
    let a = C.Ast.TVar "t0" and b = C.Ast.TVar (Printf.sprintf "t%d" n) in
    Test.make ~name:(Printf.sprintf "eq/raw_query_%03d" n)
      (Staged.stage (fun () ->
           (* includes closure (re)build: fresh context each run *)
           let eq = C.Equality.assume eq a a in
           ignore (C.Equality.equal eq a b)))
  in
  [ raw 8; raw 64; raw 256 ]

(* B6: parameterized-model resolution — dictionary chains of depth n,
   and implicit-instantiation inference overhead *)
let extension_tests =
  List.map
    (fun n ->
      staged_typecheck
        (Printf.sprintf "ext/param_model_depth_%02d" n)
        (C.Genprog.param_depth n))
    [ 1; 4; 10 ]
  @ [
      staged_typecheck "ext/implicit_calls_40"
        (C.Genprog.implicit_calls ~implicit:true 40);
      staged_typecheck "ext/explicit_calls_40"
        (C.Genprog.implicit_calls ~implicit:false 40);
    ]

(* B7: the FG-level libraries as end-to-end workloads *)
let library_tests =
  let sort_src n =
    let l = C.Prelude.int_list (List.init n (fun i -> (i * 7919) mod 100)) in
    C.Prelude.wrap (Printf.sprintf "insertion_sort(%s)" l)
  in
  let graph_src n =
    (* a path graph of n vertices; reachability end to end *)
    let adj = C.Graph_lib.adj (List.init n (fun i -> (i, if i + 1 < n then [ i + 1 ] else []))) in
    C.Graph_lib.wrap
      (Printf.sprintf "reachable[list (int * list int)](%s, 0, %d)" adj (n - 1))
  in
  let matmul_src n =
    let m = C.Matrix_lib.int_matrix (List.init n (fun i -> List.init n (fun j -> i + j))) in
    C.Matrix_lib.wrap (Printf.sprintf "using arith in mat_mul[int](%s, %s)" m m)
  in
  [
    staged_pipeline "lib/sort_20" (sort_src 20);
    staged_pipeline "lib/graph_reach_12" (graph_src 12);
    staged_pipeline "lib/matmul_4x4" (matmul_src 4);
  ]

(* B3: dictionary-passing overhead — FG translation vs System F with
   explicit operation arguments vs monomorphic code, on the same
   accumulate workload *)
let overhead_n = 60

let overhead_programs =
  let fg_ast = fg_parse (C.Genprog.accumulate_workload overhead_n) in
  let translated = fg_translate fg_ast in
  let higher_order =
    F.Parser.exp_of_string (C.Genprog.accumulate_workload_systemf overhead_n)
  in
  let mono =
    F.Parser.exp_of_string (C.Genprog.accumulate_workload_mono overhead_n)
  in
  (fg_ast, translated, higher_order, mono)

let overhead_tests =
  let fg_ast, translated, higher_order, mono = overhead_programs in
  [
    staged_f_eval "overhead/dict_translated" translated;
    staged_f_eval "overhead/explicit_args" higher_order;
    staged_f_eval "overhead/monomorphic" mono;
    staged_fg_interp "overhead/fg_direct" fg_ast;
  ]

(* S1: session amortization — the same prelude-using program driven by
   a shared session (prelude checked once, outside the timed region)
   against the one-shot pipeline, which re-checks the prelude text
   every run.  The gap is exactly the per-program cost the session
   design removes. *)
let session_tests =
  let body =
    Printf.sprintf "accumulate[int](%s)" (C.Prelude.int_list [ 1; 2; 3; 4 ])
  in
  let shared =
    C.Session.of_config C.Session.Config.(default |> with_standard_prelude)
  in
  let no_prelude = C.Session.of_config C.Session.Config.default in
  let standalone = C.Corpus.fig5_accumulate.source in
  [
    Test.make ~name:"session/prelude_amortized"
      (Staged.stage (fun () -> ignore (C.Session.run shared body)));
    Test.make ~name:"session/prelude_fresh_pipeline"
      (Staged.stage (fun () -> ignore (C.Pipeline.run (C.Prelude.wrap body))));
    Test.make ~name:"session/no_prelude_shared"
      (Staged.stage (fun () -> ignore (C.Session.run no_prelude standalone)));
    Test.make ~name:"session/no_prelude_fresh"
      (Staged.stage (fun () -> ignore (C.Pipeline.run standalone)));
  ]

(* ---------------------------------------------------------------- *)
(* Runner                                                            *)

let all_tests =
  fig_tests @ phase_tests @ theorem_tests @ scale_typecheck_tests
  @ scale_refine_tests @ eq_tests @ extension_tests @ library_tests
  @ overhead_tests @ session_tests

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second quota)
      ~stabilize:true ~compaction:false ()
  in
  let grouped = Test.make_grouped ~name:"fg" ~fmt:"%s %s" all_tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols (Instance.monotonic_clock) raw in
  results

let print_results results =
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Fmt.pr "%-40s %14s %10s@." "benchmark" "ns/run" "r^2";
  Fmt.pr "%s@." (String.make 66 '-');
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> Fmt.str "%14.1f" e
        | _ -> Fmt.str "%14s" "-"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Fmt.str "%10.4f" r
        | None -> Fmt.str "%10s" "-"
      in
      Fmt.pr "%-40s %s %s@." name est r2)
    rows

(* Deterministic step counts for B3: the instrumentation the paper's
   translation invites — how many beta steps does dictionary passing
   add? *)
let print_step_counts () =
  let fg_ast, translated, higher_order, mono = overhead_programs in
  let _, s_tr = F.Eval.run translated in
  let _, s_ho = F.Eval.run higher_order in
  let _, s_mono = F.Eval.run mono in
  let _, s_fg = C.Interp.run_program fg_ast in
  Fmt.pr "@.B3 dictionary-passing overhead (accumulate over %d elements)@."
    overhead_n;
  Fmt.pr "%s@." (String.make 66 '-');
  Fmt.pr "%-40s %10s %12s@." "variant" "beta steps" "vs mono";
  List.iter
    (fun (name, steps) ->
      Fmt.pr "%-40s %10d %11.2fx@." name steps
        (float_of_int steps /. float_of_int s_mono))
    [
      ("monomorphic System F", s_mono);
      ("explicit operation arguments (Fig 3)", s_ho);
      ("FG translation (dictionary passing)", s_tr);
      ("FG direct interpreter", s_fg);
    ]

(* Backend comparison: the instantiation-fanout family (one generic
   called at n distinct ground types, the specializer's scaling
   dimension) under all three backends.  Beta steps and term sizes are
   deterministic; wall-clock is the end-to-end pipeline per run, so it
   includes the specialization passes themselves — specialization pays
   off when evaluation dominates, which the step column quantifies
   independently of machine noise. *)
let print_backend_comparison () =
  let module B = C.Backend in
  let backends = [ B.Dict; B.Stencil; B.Hybrid ] in
  let session_for b =
    C.Session.of_config C.Session.Config.(default |> with_backend b)
  in
  let rows =
    List.map
      (fun (name, src) ->
        ( name,
          src,
          List.map
            (fun b ->
              let out = C.Session.run (session_for b) src in
              let steps, size, stencils, shared =
                match out.C.Session.spec with
                | None ->
                    ( out.C.Session.translated_steps,
                      F.Ast.exp_size out.C.Session.f_exp, 0, 0 )
                | Some sp ->
                    ( sp.C.Session.spec_steps,
                      F.Ast.exp_size sp.C.Session.spec_exp,
                      sp.C.Session.spec_stats.F.Specialize.st_stencils,
                      sp.C.Session.spec_stats.F.Specialize.st_shared )
              in
              (b, steps, size, stencils, shared))
            backends ))
      [
        ("fanout_04_reps_06", C.Genprog.instantiation_fanout ~reps:6 4);
        ("fanout_08_reps_06", C.Genprog.instantiation_fanout ~reps:6 8);
        ("let_chain_24", C.Genprog.let_chain 24);
        ("param_depth_06", C.Genprog.param_depth 6);
      ]
  in
  Fmt.pr
    "@.S4 specializing backends (beta steps evaluating the final System F \
     term)@.";
  Fmt.pr "%s@." (String.make 78 '-');
  Fmt.pr "%-20s %-8s %8s %10s %9s %7s %9s@." "program" "backend" "steps"
    "vs dict" "exp size" "stencil" "shared";
  List.iter
    (fun (name, _, cells) ->
      let dict_steps =
        match cells with (_, s, _, _, _) :: _ -> s | [] -> 1
      in
      List.iter
        (fun (b, steps, size, stencils, shared) ->
          Fmt.pr "%-20s %-8s %8d %9.2fx %9d %7d %9d@." name (B.to_string b)
            steps
            (float_of_int steps /. float_of_int (max 1 dict_steps))
            size stencils shared)
        cells)
    rows;
  (* Wall clock over the whole pipeline, amortized over [iters] runs
     through one warm session per backend. *)
  let iters = 40 in
  Fmt.pr "@.%-20s %-8s %12s@." "program" "backend" "wall (ms/run)";
  List.iter
    (fun (name, src, _) ->
      List.iter
        (fun b ->
          let s = session_for b in
          ignore (C.Session.run s src);
          let t0 = Unix.gettimeofday () in
          for _ = 1 to iters do
            ignore (C.Session.run s src)
          done;
          let dt = Unix.gettimeofday () -. t0 in
          Fmt.pr "%-20s %-8s %12.3f@." name (B.to_string b)
            (dt *. 1000. /. float_of_int iters))
        backends)
    rows

(* Batch scaling: wall-clock time to check a batch of substantial
   generated programs across domain counts.  Achievable speedup is
   bounded by the machine's core count (printed below); the "stable"
   column checks order stability against the 1-domain run, so this
   doubles as a determinism smoke test. *)
let print_batch_scaling () =
  let jobs =
    List.concat
      (List.init 3 (fun round ->
           List.map
             (fun (name, src) -> (Printf.sprintf "%s#%d" name round, src))
             [
               ("let_chain_80", C.Genprog.let_chain 80);
               ("many_models_160", C.Genprog.many_models 160);
               ("wide_where_32", C.Genprog.wide_where 32);
               ("refine_diamond_08", C.Genprog.refinement_diamond 8);
               ("same_type_chain_64", C.Genprog.same_type_chain 64);
               ("assoc_chain_24", C.Genprog.assoc_chain 24);
             ]))
  in
  let time_batch domains =
    let s = C.Session.of_config C.Session.Config.default in
    let t0 = Unix.gettimeofday () in
    let results = C.Session.run_batch ~domains s jobs in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, results)
  in
  let base_dt, base = time_batch 1 in
  Fmt.pr
    "@.S2 batch scaling (%d generated programs, full pipeline each; %d \
     core(s) available)@."
    (List.length jobs)
    (C.Session.default_domains ());
  Fmt.pr "%s@." (String.make 66 '-');
  Fmt.pr "%-12s %12s %10s %8s@." "domains" "wall (ms)" "speedup" "stable";
  List.iter
    (fun domains ->
      let dt, results = if domains = 1 then (base_dt, base) else time_batch domains in
      let stable =
        List.for_all2
          (fun (n1, r1) (n2, r2) ->
            n1 = n2
            &&
            match (r1, r2) with
            | Ok (a : C.Session.outcome), Ok (b : C.Session.outcome) ->
                C.Interp.flat_equal a.value b.value
            | Error _, Error _ -> true
            | _ -> false)
          base results
      in
      Fmt.pr "%-12d %12.1f %9.2fx %8s@." domains (dt *. 1000.)
        (base_dt /. dt)
        (if stable then "yes" else "NO"))
    [ 1; 2; 4; C.Session.default_domains () ]

(* Incremental frontend: a family of programs sharing a long
   declaration prefix, each differing from the others only in the last
   declaration.  Cold checks a fresh session per member; warm shares
   one session, so every member past the first re-checks exactly one
   compilation unit (the edited declaration) plus the residual body.
   tools/ci.sh greps the speedup line and asserts the 3x bar. *)
let print_incremental () =
  let decls = 120 and members = 20 in
  let member i =
    C.Genprog.shared_prefix ~edit_at:(decls - 1) ~edit:i ~decls ()
  in
  (* Phase times come from telemetry so the re-check speedup isolates
     what the unit cache accelerates (checking); parsing the edited
     source is inherently whole-program and identical on both sides. *)
  let module T = Fg_util.Telemetry in
  let phases f =
    let t0 = Unix.gettimeofday () in
    let before = T.snapshot () in
    f ();
    let d = T.diff (T.snapshot ()) before in
    ( (Unix.gettimeofday () -. t0) *. 1000.,
      float_of_int d.T.parse_ns /. 1e6,
      float_of_int d.T.check_ns /. 1e6 )
  in
  let cold_wall, cold_parse, cold_check =
    phases (fun () ->
        for i = 1 to members do
          ignore
            (C.Session.typecheck ~file:"bench"
               (C.Session.of_config C.Session.Config.default)
               (member i))
        done)
  in
  let s = C.Session.of_config C.Session.Config.default in
  ignore (C.Session.typecheck ~file:"bench" s (member 0));
  let warm_wall, warm_parse, warm_check =
    phases (fun () ->
        for i = 1 to members do
          ignore (C.Session.typecheck ~file:"bench" s (member i))
        done)
  in
  let st = C.Session.cache_stats s in
  Fmt.pr
    "@.S3 incremental re-check (%d members sharing a %d-declaration \
     prefix, edit last decl)@."
    members decls;
  Fmt.pr "%s@." (String.make 66 '-');
  Fmt.pr "%-28s %10s %10s %10s@." "strategy" "wall (ms)" "parse (ms)"
    "check (ms)";
  Fmt.pr "%-28s %10.1f %10.1f %10.1f@." "cold (fresh session each)" cold_wall
    cold_parse cold_check;
  Fmt.pr "%-28s %10.1f %10.1f %10.1f@." "warm (shared unit cache)" warm_wall
    warm_parse warm_check;
  Fmt.pr "unit cache: %d hits, %d misses, %d entries@." st.C.Unit.s_hits
    st.C.Unit.s_misses st.C.Unit.s_size;
  Fmt.pr "incremental re-check speedup (edit last decl): %.2fx@."
    (cold_check /. warm_check)

let () =
  Fmt.pr "FG benchmark harness (quota %.2fs per test)@." quota;
  Fmt.pr "%s@.@." (String.make 66 '=');
  let results = run_benchmarks () in
  print_results results;
  print_step_counts ();
  print_backend_comparison ();
  print_batch_scaling ();
  print_incremental ()
