examples/quickstart.mli:
