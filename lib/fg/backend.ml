(** Backend selection (see the interface). *)

open Fg_util
module F = Fg_systemf

type t = Dict | Stencil | Hybrid | Guided

let all = [ Dict; Stencil; Hybrid; Guided ]

let to_string = function
  | Dict -> "dict"
  | Stencil -> "stencil"
  | Hybrid -> "hybrid"
  | Guided -> "guided"

let of_string = function
  | "dict" -> Some Dict
  | "stencil" -> Some Stencil
  | "hybrid" -> Some Hybrid
  | "guided" -> Some Guided
  | _ -> None

let of_string_exn ?loc s =
  match of_string s with
  | Some b -> b
  | None ->
      Diag.config_error ?loc ~code:"FG1001"
        ~notes:
          [
            Diag.note "known backends: %s"
              (String.concat ", " (List.map to_string all));
          ]
        "unknown backend '%s'" s

let specialize_mode = function
  | Dict -> None
  | Stencil -> Some F.Specialize.Stencil
  | Hybrid -> Some F.Specialize.Hybrid
  | Guided -> Some F.Specialize.Guided
