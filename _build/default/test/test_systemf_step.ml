(* Tests for the substitution-based small-step System F semantics, and
   its agreement with the environment-based big-step evaluator. *)

open Fg_systemf
module A = Ast

let parse = Parser.exp_of_string

let normal_form src =
  let nf, _ = Step.normalize (parse src) in
  Pretty.exp_to_flat_string nf

let check src expected =
  Alcotest.(check string) src expected (normal_form src)

let test_values () =
  List.iter
    (fun src -> Alcotest.(check bool) src true (Step.is_value (parse src)))
    [
      "42"; "true"; "()"; "fun (x : int) => x"; "tfun a => 1"; "(1, 2)";
      "nil[int]"; "cons[int](1, nil[int])"; "iadd"; "iadd(1)" (* partial *);
      "cons[int](1)" (* partial constructor *);
    ];
  List.iter
    (fun src -> Alcotest.(check bool) src false (Step.is_value (parse src)))
    [
      "1 + 2"; "(fun (x : int) => x)(1)"; "nth (1, 2) 0"; "let x = 1 in x";
      "if true then 1 else 2"; "car[int](nil[int])";
      "(tfun a => fun (x : a) => x)[int]";
    ]

let test_single_steps () =
  let step_once src =
    match Step.step (parse src) with
    | Some e -> Pretty.exp_to_flat_string e
    | None -> "<value>"
  in
  Alcotest.(check string) "beta" "5" (step_once "(fun (x : int) => x)(5)");
  Alcotest.(check string) "delta" "3" (step_once "1 + 2");
  Alcotest.(check string) "let" "7" (step_once "let x = 7 in x");
  Alcotest.(check string) "tuple proj" "2" (step_once "nth (1, 2) 1");
  Alcotest.(check string) "if" "1" (step_once "if true then 1 else 2");
  Alcotest.(check string) "tyapp" "fun (x : int) => x"
    (step_once "(tfun a => fun (x : a) => x)[int]");
  (* leftmost-outermost: the function position steps first *)
  Alcotest.(check string) "left first" "(fun (x : int) => x)(iadd(1, 1))"
    (step_once "(let f = fun (x : int) => x in f)(1 + 1)")

let test_normalize () =
  check "1 + 2 * 3" "7";
  check "(fun (x : int, y : int) => x - y)(10, 4)" "6";
  check
    "(fix (f : fn(int) -> int) => fun (n : int) => if n == 0 then 1 else n * \
     f(n - 1))(5)"
    "120";
  check "append[int](cons[int](1, nil[int]), cons[int](2, nil[int]))"
    "cons[int](1, cons[int](2, nil[int]))";
  check "cdr[int](cons[int](1, cons[int](2, nil[int])))"
    "cons[int](2, nil[int])";
  check "null[bool](nil[bool])" "true";
  check "length[int](cons[int](5, nil[int]))" "1";
  check "let add1 = iadd(1) in add1(41)" "42"

let test_capture_avoidance () =
  (* [y := x] (fun x -> (x, y)) must rename the binder *)
  let e =
    A.abs [ ("x", A.TBase A.TInt) ] (A.tuple [ A.var "x"; A.var "y" ])
  in
  let r = Step.subst "y" (A.var "x") e in
  match r.A.desc with
  | A.Abs ([ (x', _) ], { desc = A.Tuple [ inner; outer ]; _ }) ->
      Alcotest.(check bool) "binder renamed" true (x' <> "x");
      (match (inner.A.desc, outer.A.desc) with
      | A.Var i, A.Var o ->
          Alcotest.(check string) "bound occurrence follows binder" x' i;
          Alcotest.(check string) "substituted var is free x" "x" o
      | _ -> Alcotest.fail "unexpected body")
  | _ -> Alcotest.fail "unexpected shape"

let test_fix_unfold () =
  let e = parse "fix (f : fn(int) -> int) => fun (n : int) => f(n)" in
  match Step.step e with
  | Some e' ->
      (* one unfolding: a lambda whose body mentions the fix again *)
      Alcotest.(check bool) "unfolds to a value" true (Step.is_value e');
      Alcotest.(check bool) "contains the fix" true
        (Astring_contains.contains ~needle:"fix (f"
           (Pretty.exp_to_flat_string e'))
  | None -> Alcotest.fail "fix should step"

let test_stuck_detected () =
  List.iter
    (fun src ->
      match Fg_util.Diag.protect (fun () -> Step.normalize (parse src)) with
      | Ok _ -> Alcotest.failf "%s: expected stuck/error" src
      | Error _ -> ())
    [ "1(2)"; "nth 1 0"; "if 1 then 2 else 3"; "car[int](nil[int])"; "x" ]

let test_agreement_corpus () =
  List.iter
    (fun (e : Fg_core.Corpus.entry) ->
      match e.expected with
      | Fg_core.Corpus.Value _ ->
          let f =
            Fg_core.Check.translate (Fg_core.Parser.exp_of_string e.source)
          in
          ignore (Step.check_agreement f)
      | Fg_core.Corpus.Fails _ -> ())
    Fg_core.Corpus.all

let prop_agreement_generated =
  QCheck.Test.make
    ~name:"big-step and small-step agree on generated translations"
    ~count:150
    QCheck.(make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000))
    (fun seed ->
      let fg = Fg_core.Gen.program_of_seed (seed + 31_000_000) in
      let f = Fg_core.Check.translate fg in
      match Fg_util.Diag.protect (fun () -> Step.check_agreement f) with
      | Ok _ -> true
      | Error d ->
          QCheck.Test.fail_reportf "seed %d: %s" seed
            (Fg_util.Diag.to_string d))

let suite =
  [
    Alcotest.test_case "value recognition" `Quick test_values;
    Alcotest.test_case "single steps" `Quick test_single_steps;
    Alcotest.test_case "normalization" `Quick test_normalize;
    Alcotest.test_case "capture avoidance" `Quick test_capture_avoidance;
    Alcotest.test_case "fix unfolding" `Quick test_fix_unfold;
    Alcotest.test_case "stuck terms detected" `Quick test_stuck_detected;
    Alcotest.test_case "agreement on corpus translations" `Quick
      test_agreement_corpus;
    QCheck_alcotest.to_alcotest prop_agreement_generated;
  ]
