examples/graphs.mli:
