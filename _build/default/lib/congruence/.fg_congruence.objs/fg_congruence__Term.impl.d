lib/congruence/term.ml: Fg_util Fmt Int List String
