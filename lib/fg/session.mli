(** The session-based compiler driver: an amortizing, observable,
    concurrent front door over the FG pipeline.

    A {!t} owns everything that one-shot driving rebuilt per program:

    - a {b compilation-unit cache} ({!Unit}): every declaration spine —
      the prelude's, each program's, each {!extend} — is split into
      content-hashed units, each checked at most once per (content,
      dependency chain) and replayed from the cache everywhere else.
      The prelude is checked {e once} at {!create}; re-checking an
      edited program re-checks only the declarations whose content or
      dependencies changed;
    - a {b hash-consed type table} ({!Hashcons}): each program's AST is
      interned on parse, so the pointer fast path in {!Ast.ty_equal}
      fires for every repeated type;
    - a {b memoized model-resolution cache} (in {!Env}): lookups are
      keyed on (concept, argument types, scope generation), so the
      prelude-scope resolutions one program performs are free for the
      next;
    - {b telemetry} ({!Fg_util.Telemetry}): per-phase wall time and
      cache counters, reported by [fgc --stats].

    Programs checked through a session are bit-for-bit identical to
    standalone runs: the fresh-name supply is rewound to its
    post-prelude position before each program, so output never depends
    on how many programs the session has already served.

    A session is single-domain; {!run_batch} verifies N programs across
    OCaml 5 domains by giving each domain its own session built from
    the same configuration, with deterministic, order-stable output. *)

open Fg_util
module F := Fg_systemf

type t

(** Everything that parameterizes a session, in one structurally
    comparable record: servers key worker sessions on a [Config.t],
    batch domains rebuild sessions from one, and every driver entry
    point ([fgc], the REPL, the fuzzer, tests) goes through
    {!of_config}.  Build one with {!Config.default} and the [with_*]
    narrowers. *)
module Config : sig
  type t = {
    backend : Backend.t;  (** translation backend (default {!Backend.Dict}) *)
    resolution : Resolution.mode;
    escape_check : bool;
    prelude : string option;
        (** a declaration stack in concrete syntax (each declaration
            ending in [in], as {!Prelude.full} is written) *)
    unit_cache_capacity : int option;
        (** bound for a private unit cache; [None] =
            {!Unit.default_capacity} *)
    cache_dir : string option;
        (** root of a persistent on-disk unit store ({!Diskcache})
            attached behind the session's private unit cache; [None]
            (the default) keeps the cache memory-only.  Ignored when a
            shared [cache] is passed to {!of_config} — whoever owns the
            shared cache owns its tiers. *)
    cache_max_bytes : int option;
        (** size bound for the disk store; oldest-accessed entries are
            evicted past it.  [None] = unbounded. *)
    profile : Profile.t option;
        (** the workload profile consulted by the {!Backend.Guided}
            backend (hot instantiations get stenciled, everything else
            keeps dictionary passing).  Ignored by other backends.
            Plain data, so configs stay structurally comparable —
            servers key worker sessions on them. *)
  }

  val default : t

  val with_backend : Backend.t -> t -> t
  val with_resolution : Resolution.mode -> t -> t
  val with_escape_check : bool -> t -> t
  val with_prelude : string option -> t -> t

  (** The standard prelude ({!Prelude.full}). *)
  val with_standard_prelude : t -> t

  val with_unit_cache_capacity : int option -> t -> t
  val with_cache_dir : string option -> t -> t
  val with_cache_max_bytes : int option -> t -> t
  val with_profile : Profile.t option -> t -> t
end

(** What the specializing backends add to an outcome: the partially
    evaluated program, its cost, and the specializer's counters.  The
    session has already enforced the oracle by the time this record
    exists: the specialized program re-typechecks in System F at a
    type alpha-equal to the translation's ([FG0502] otherwise) and
    evaluates to the same flat value as the direct interpreter
    ([FG0503] otherwise). *)
type spec = {
  spec_exp : F.Ast.exp;  (** the specialized System F program *)
  spec_steps : int;  (** beta steps evaluating it *)
  spec_stats : F.Specialize.stats;
}

(** Everything the full pipeline produces for one program — the same
    shape {!Pipeline.outcome} always had. *)
type outcome = {
  source : string;
  ast : Ast.exp;
  fg_ty : Ast.ty;  (** the program's FG type *)
  f_exp : F.Ast.exp;  (** its System F translation *)
  f_ty : F.Ast.ty;  (** the System F type of the translation *)
  theorem_holds : bool;
      (** [τ'] alpha-equal to the translation of [τ] — always true when
          this record exists, since a mismatch raises; recorded for
          reporting *)
  value : Interp.flat;  (** the program's value (first-order part) *)
  direct_steps : int;  (** beta steps taken by the direct interpreter *)
  translated_steps : int;  (** beta steps evaluating the translation *)
  backend : Backend.t;  (** the backend this outcome ran under *)
  spec : spec option;  (** [Some] iff [backend] is not {!Backend.Dict} *)
}

(** [of_config cfg] — a new session.  The prelude (if any) is parsed
    and checked here, once, through the session's compilation-unit
    cache.  [cache] shares an existing unit cache (e.g. one per server
    worker) instead of creating a private one — it is a separate
    argument, not part of {!Config.t}, precisely so configs stay
    structurally comparable.  Raises {!Diag.Error} if the prelude
    itself is ill-formed. *)
val of_config : ?cache:Unit.cache -> Config.t -> t

(** The session's configuration (its creation-time [Config.t]). *)
val config : t -> Config.t

(** [create ?prelude ()] — optional-argument shim over {!of_config}.
    @deprecated Build a {!Config.t} and call {!of_config}. *)
val create :
  ?resolution:Resolution.mode -> ?escape_check:bool -> ?prelude:string ->
  ?cache:Unit.cache -> ?unit_cache_capacity:int ->
  unit -> t

(** A session preloaded with the standard prelude ({!Prelude.full}).
    @deprecated Use {!Config.with_standard_prelude} and {!of_config}. *)
val with_prelude : ?resolution:Resolution.mode -> unit -> t

val backend : t -> Backend.t
val resolution : t -> Resolution.mode
val prelude_source : t -> string option

(** [extend t decls] — a session whose scope additionally contains
    [decls] (a declaration stack), checked incrementally on top of
    [t]'s environment; [t] itself is unchanged.  This is how the REPL
    accumulates declarations without re-checking its history. *)
val extend : t -> string -> t

val extend_result : t -> string -> (t, Diag.diagnostic) result

(** {1 Per-program operations}

    All of these parse their argument, check it under the session
    environment, and raise {!Diag.Error} on failure, exactly like the
    corresponding one-shot {!Pipeline} entry points. *)

(** Full pipeline: check, translate, verify the theorem, evaluate both
    semantics and require agreement. *)
val run : ?file:string -> ?fuel:int -> t -> string -> outcome

val run_result :
  ?file:string -> ?fuel:int -> t -> string ->
  (outcome, Diag.diagnostic) result

(** Result of a recovering run: the outcome when the whole pipeline
    succeeded, plus every diagnostic — errors and warnings, in report
    order — collected along the way. *)
type run_report = {
  outcome : outcome option;  (** [Some] iff no errors were recorded *)
  diagnostics : Diag.diagnostic list;
}

(** Full pipeline with multi-error recovery: the lexer skips bad
    characters, the parser synchronizes at declaration keywords, and
    the checker poisons failed declarations instead of aborting, so one
    invocation reports every independent error (cascades from poisoned
    bindings are suppressed).  Warnings are collected even on
    success. *)
val run_full : ?file:string -> ?fuel:int -> t -> string -> run_report

(** {!run_full} plus the raw material a workspace language service
    needs: the walked declaration log (pairing every program
    declaration with its unit pkey and hit/checked/failed outcome) and
    the position-index entries ({!Check.index_entry}) recorded while
    checking.  The report is computed by the same code path as
    {!run_full}, so its rendered diagnostics are byte-identical to a
    plain run of the same source. *)
type indexed_run = {
  ix_report : run_report;
  ix_decls : (Ast.exp * string * Unit.decl_outcome) list;
  ix_entries : Check.index_entry list;  (** in recording order *)
}

val run_indexed : ?file:string -> ?fuel:int -> t -> string -> indexed_run

(** Type check only; returns the program's FG type. *)
val typecheck : ?file:string -> t -> string -> Ast.ty

(** Translate only; returns the whole-program System F term (prelude
    dictionaries included). *)
val translate : ?file:string -> t -> string -> F.Ast.exp

(** Elaborate only: (type, elaborated program, translation). *)
val elaborate : ?file:string -> t -> string -> Ast.ty * Ast.exp * F.Ast.exp

(** Theorem check (Theorems 1/2) without evaluation. *)
val verify : ?file:string -> t -> string -> Theorems.report

(** Direct interpretation only (of the elaborated program). *)
val interpret : ?file:string -> ?fuel:int -> t -> string -> Interp.value

(** {1 Parallel batch verification} *)

(** The default domain count: the runtime's recommendation, at least 1. *)
val default_domains : unit -> int

(** [run_batch ~domains t jobs] — run every [(name, source)] job
    through the full pipeline, fanned out over [domains] OCaml domains
    (default {!default_domains}).  The calling session serves one
    domain; every other domain builds its own session from the same
    configuration, so no mutable checker state crosses domains.
    Results come back in job order and are identical for every choice
    of [domains] (each program's fresh names are rewound
    per-program). *)
val run_batch :
  ?domains:int -> ?fuel:int -> t -> (string * string) list ->
  (string * (outcome, Diag.diagnostic) result) list

(** {1 Observability} *)

(** Telemetry accumulated process-wide since this session was created
    (includes work done by batch domains the session spawned). *)
val stats : t -> Telemetry.snapshot

(** Distinct hash-consed types interned by this session. *)
val interned_types : t -> int

(** The session's compilation-unit cache (shared or private). *)
val unit_cache : t -> Unit.cache

(** Unit-cache counters: hits, misses, evictions, invalidations, size. *)
val cache_stats : t -> Unit.stats
