lib/fg/pretty.ml: Ast Fg_util Fmt List Pp_util
