(* Tests for the direct FG interpreter: values, runtime model
   resolution, lexical scoping at runtime, and failure modes. *)

open Fg_core

let run ?fuel src =
  let e = Parser.exp_of_string src in
  ignore (Check.typecheck e);
  Interp.run_value ?fuel e

let check_value ?fuel src expected =
  Alcotest.(check string) src expected (Interp.value_to_string (run ?fuel src))

let monoid_full = Corpus.monoid_prelude ^ Corpus.monoid_int_add

let test_basics () =
  check_value "1 + 2 * 3" "7";
  check_value "(fun (x : int) => x * x)(7)" "49";
  check_value "if true then (1, 2) else (3, 4)" "(1, 2)";
  check_value "nth (10, 20, 30) 1" "20";
  check_value "let x = 4 in x + x" "8";
  check_value "cons[int](1, cons[int](2, nil[int]))" "[1, 2]"

let test_member_resolution () =
  check_value (monoid_full ^ "Monoid<int>.identity_elt") "0";
  check_value (monoid_full ^ "Monoid<int>.binary_op(20, 22)") "42";
  check_value (monoid_full ^ "Semigroup<int>.binary_op(1, 2)") "3"

let test_generic_call () =
  check_value
    (monoid_full
   ^ "(tfun t where Monoid<t> => fun (x : t) => Semigroup<t>.binary_op(x, x))[int](21)")
    "42"

let test_call_site_resolution () =
  (* the model is looked up where the instantiation happens, not where
     the generic function was defined *)
  check_value
    (Corpus.monoid_prelude
   ^ {|let f = tfun t where Monoid<t> => fun (x : t) => Monoid<t>.identity_elt in
model Semigroup<int> { binary_op = imult; } in
model Monoid<int> { identity_elt = 99; } in
f[int](1)|})
    "99"

let test_runtime_shadowing () =
  check_value
    (Corpus.monoid_prelude
   ^ {|let f = tfun t where Monoid<t> => fun (x : t) => Monoid<t>.identity_elt in
model Semigroup<int> { binary_op = iadd; } in
model Monoid<int> { identity_elt = 1; } in
let a = f[int](0) in
model Semigroup<int> { binary_op = imult; } in
model Monoid<int> { identity_elt = 2; } in
let b = f[int](0) in
(a, b)|})
    "(1, 2)"

let test_assoc_normalization () =
  (* requirement Monoid<Iterator<i>.elt> resolved at a ground call *)
  check_value (Corpus.iterator_accumulate.source) "7"

let test_alias_runtime () =
  check_value "type t = int in (fun (x : t) => x + 1)(1)" "2"

let test_fuel () =
  match
    Fg_util.Diag.protect (fun () ->
        run ~fuel:100
          "(fix (f : fn(int) -> int) => fun (x : int) => f(x + 1))(0)")
  with
  | Ok _ -> Alcotest.fail "expected fuel exhaustion"
  | Error d ->
      Alcotest.(check bool) "fuel" true
        (Astring_contains.contains ~needle:"fuel" d.message)

let test_flat_values () =
  let v = run "(1, (true, ()), cons[int](5, nil[int]))" in
  let f = Interp.flatten v in
  Alcotest.(check string) "flat rendering" "(1, (true, ()), [5])"
    (Interp.flat_to_string f);
  Alcotest.(check bool) "flat equality" true
    (Interp.flat_equal f
       (Interp.FlTuple
          [
            Interp.FlInt 1;
            Interp.FlTuple [ Interp.FlBool true; Interp.FlUnit ];
            Interp.FlList [ Interp.FlInt 5 ];
          ]))

let test_flat_f_agreement () =
  (* flatten and flatten_f produce the same flat for the same data *)
  let fg = run "(1, true)" in
  let f =
    Fg_systemf.Eval.run_value (Fg_systemf.Parser.exp_of_string "(1, true)")
  in
  Alcotest.(check bool) "cross-language flat equality" true
    (Interp.flat_equal (Interp.flatten fg) (Interp.flatten_f f))

let test_functions_flatten_opaque () =
  let v = run "fun (x : int) => x" in
  Alcotest.(check bool) "function is FlFun" true
    (Interp.flat_equal (Interp.flatten v) Interp.FlFun)

let test_deep_recursion () =
  (* the interpreter handles a few thousand recursive calls *)
  check_value
    "(fix (sum : fn(int) -> int) => fun (n : int) => if n == 0 then 0 else n \
     + sum(n - 1))(1000)"
    "500500"

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "member resolution" `Quick test_member_resolution;
    Alcotest.test_case "generic call" `Quick test_generic_call;
    Alcotest.test_case "call-site resolution" `Quick test_call_site_resolution;
    Alcotest.test_case "runtime shadowing" `Quick test_runtime_shadowing;
    Alcotest.test_case "assoc normalization" `Quick test_assoc_normalization;
    Alcotest.test_case "alias at runtime" `Quick test_alias_runtime;
    Alcotest.test_case "fuel" `Quick test_fuel;
    Alcotest.test_case "flat values" `Quick test_flat_values;
    Alcotest.test_case "flat cross-language" `Quick test_flat_f_agreement;
    Alcotest.test_case "functions flatten opaque" `Quick
      test_functions_flatten_opaque;
    Alcotest.test_case "deep recursion" `Quick test_deep_recursion;
  ]
