(* Tests for parameterized models — the Section 6 "parameterized
   models" extension (the FG analogue of Haskell's parameterized
   instances): declaration checking, recursive instance construction,
   resolution through contexts, interaction with associated types, and
   specialization by lexical shadowing.  Every positive case runs
   through the full pipeline, so the theorem and interpreter/translation
   agreement are re-verified on each. *)

open Fg_core

let check ?resolution src expected =
  match Pipeline.run_result ?resolution ~file:"parameterized" src with
  | Ok out ->
      Alcotest.(check string) src expected (Interp.flat_to_string out.value)
  | Error d -> Alcotest.failf "%s: %s" src (Fg_util.Diag.to_string d)

let check_fails src phase =
  match Pipeline.run_result ~file:"parameterized" src with
  | Ok out ->
      Alcotest.failf "%s: expected failure, got %s" src
        (Interp.flat_to_string out.value)
  | Error d ->
      if d.phase <> phase then
        Alcotest.failf "%s: wrong phase: %s" src (Fg_util.Diag.to_string d)

let eq_defs =
  {|concept Eq<t> { eq : fn(t, t) -> bool; } in
model Eq<int> { eq = ieq; } in
model Eq<bool> { eq = beq; } in
model <t> where Eq<t> => Eq<list t> {
  eq = fix (go : fn(list t, list t) -> bool) =>
    fun (a : list t, b : list t) =>
      if null[t](a) then null[t](b)
      else if null[t](b) then false
      else Eq<t>.eq(car[t](a), car[t](b)) && go(cdr[t](a), cdr[t](b));
} in
|}

let test_basic_instance () =
  check (eq_defs ^ "Eq<list int>.eq(cons[int](1, nil[int]), cons[int](1, nil[int]))")
    "true";
  check (eq_defs ^ "Eq<list bool>.eq(nil[bool], cons[bool](true, nil[bool]))")
    "false"

let test_triple_nesting () =
  check
    (eq_defs
   ^ {|let x = cons[list (list int)](cons[list int](cons[int](7, nil[int]), nil[list int]), nil[list (list int)]) in
Eq<list (list (list int))>.eq(x, x)|})
    "true"

let test_instance_in_generic () =
  check
    (eq_defs
   ^ {|let f = tfun t where Eq<t> => fun (x : t) => Eq<list t>.eq(cons[t](x, nil[t]), nil[t]) in
f[int](3)|})
    "false"

let test_specialization_by_shadowing () =
  (* a later, more specific ground model shadows the parameterized one *)
  check
    (eq_defs
   ^ {|model Eq<list int> { eq = fun (a : list int, b : list int) => true; } in
(Eq<list int>.eq(cons[int](1, nil[int]), nil[int]),
 Eq<list bool>.eq(cons[bool](true, nil[bool]), nil[bool]))|})
    "(true, false)"

let test_multi_param_parameterized () =
  (* mapping through a parameterized Convert instance at list types *)
  check
    {|concept Convert<a, b> { convert : fn(a) -> b; } in
model Convert<int, bool> { convert = fun (n : int) => n != 0; } in
model <a, b> where Convert<a, b> => Convert<list a, list b> {
  convert = fix (go : fn(list a) -> list b) =>
    fun (xs : list a) =>
      if null[a](xs) then nil[b]
      else cons[b](Convert<a, b>.convert(car[a](xs)), go(cdr[a](xs)));
} in
Convert<list int, list bool>.convert(cons[int](0, cons[int](3, nil[int])))|}
    "[false, true]"

let test_parameterized_with_assoc () =
  (* a parameterized model assigning an associated type from its own
     parameter; projections normalize through the match *)
  check
    {|concept Iterator<i> { types elt; curr : fn(i) -> elt; rest : fn(i) -> i; stop : fn(i) -> bool; } in
model <t> Iterator<list t> {
  types elt = t;
  curr = fun (ls : list t) => car[t](ls);
  rest = fun (ls : list t) => cdr[t](ls);
  stop = fun (ls : list t) => null[t](ls);
} in
let first = tfun i where Iterator<i> => fun (it : i) => Iterator<i>.curr(it) in
(first[list int](cons[int](9, nil[int])),
 first[list bool](cons[bool](true, nil[bool])))|}
    "(9, true)"

let test_refining_parameterized () =
  (* a parameterized model of a refining concept: the refinement
     requirement is itself discharged by a parameterized model *)
  check
    {|concept Semigroup<t> { op : fn(t, t) -> t; } in
concept Monoid<t> { refines Semigroup<t>; unit_elt : t; } in
model <t> Semigroup<list t> {
  op = fun (a : list t, b : list t) => append[t](a, b);
} in
model <t> Monoid<list t> { unit_elt = nil[t]; } in
Monoid<list int>.op(Monoid<list int>.unit_elt, cons[int](5, nil[int]))|}
    "[5]"

let test_context_through_refinement () =
  (* Ord<list t> needs Eq<list t> (refinement), which needs Eq<t>,
     which comes from Ord<t> (refinement of the context) — a chain
     through both refinement and parameterized contexts *)
  check
    (Prelude.wrap
       {|let xs = cons[int](1, cons[int](2, nil[int])) in
let ys = cons[int](1, cons[int](3, nil[int])) in
(Ord<list int>.less(xs, ys), Ord<list int>.less(ys, xs),
 Ord<list int>.less(nil[int], xs))|})
    "(true, false, true)"

let test_prelude_generic_algorithms_at_lists () =
  let l = Prelude.int_list in
  (* count at list (list int): Eq<list int> via the parameterized model *)
  check
    (Prelude.wrap
       (Printf.sprintf
          "count[list (list int)](cons[list int](%s, cons[list int](%s, cons[list int](%s, nil[list int]))), %s)"
          (l [ 1; 2 ]) (l [ 3 ]) (l [ 1; 2 ]) (l [ 1; 2 ])))
    "2";
  (* accumulate at list int: the parameterized list monoid concatenates *)
  check
    (Prelude.wrap
       (Printf.sprintf
          "accumulate[list int](cons[list int](%s, cons[list int](%s, nil[list int])))"
          (l [ 1 ]) (l [ 2; 3 ])))
    "[1, 2, 3]";
  (* min_element at list int: lexicographic Ord via parameterized model *)
  check
    (Prelude.wrap
       (Printf.sprintf
          "min_element[list (list int)](cons[list int](%s, nil[list int]), %s)"
          (l [ 1; 2 ]) (l [ 1; 3 ])))
    "[1, 2]";
  (* accumulate_iter at list bool via the parameterized Iterator and a
     local bool monoid *)
  check
    (Prelude.wrap
       ({|model Semigroup<bool> { binary_op = bor; } in
model Monoid<bool> { identity_elt = false; } in
accumulate_iter[list bool](cons[bool](false, cons[bool](true, nil[bool])))|}))
    "true"

let test_translation_shape () =
  (* the parameterized dictionary is a fix-bound polymorphic function *)
  let f = Check.translate (Parser.exp_of_string (eq_defs ^ "0")) in
  let s = Fg_systemf.Pretty.exp_to_flat_string f in
  Alcotest.(check bool) "fix-bound dictionary" true
    (Astring_contains.contains ~needle:"fix (Eq_" s);
  Alcotest.(check bool) "polymorphic" true
    (Astring_contains.contains ~needle:"forall t. fn(tuple(fn(t, t) -> bool))"
       s)

let test_global_mode_compatible () =
  (* parameterized models are fine under global resolution when unique *)
  check ~resolution:Resolution.Global
    (eq_defs ^ "Eq<list int>.eq(nil[int], nil[int])")
    "true"

let test_global_mode_overlap_rejected () =
  let src =
    {|concept Eq<t> { eq : fn(t, t) -> bool; } in
model <t> Eq<list t> { eq = fun (a : list t, b : list t) => true; } in
model <u> Eq<list u> { eq = fun (a : list u, b : list u) => false; } in
0|}
  in
  match
    Pipeline.run_result ~resolution:Resolution.Global ~file:"overlap" src
  with
  | Ok _ -> Alcotest.fail "expected global-mode overlap rejection"
  | Error d ->
      Alcotest.(check bool) "overlap" true
        (Astring_contains.contains ~needle:"overlapping" d.message)

let test_unused_param_rejected () =
  check_fails
    {|concept Eq<t> { eq : fn(t, t) -> bool; } in
model <t, u> Eq<list t> { eq = fun (a : list t, b : list t) => true; } in 0|}
    Fg_util.Diag.Wf

let test_missing_context_rejected () =
  check_fails
    (eq_defs ^ "Eq<list unit>.eq(nil[unit], nil[unit])")
    Fg_util.Diag.Resolve

let test_divergence_fused () =
  check_fails
    {|concept C<t> { v : t; } in
model <t> where C<list t> => C<t> { v = C<list t>.v(0); } in
C<int>.v|}
    Fg_util.Diag.Resolve

let prop_parameterized_agreement =
  (* random element lists, equality through the parameterized instance:
     direct interpreter and translation agree with the OCaml oracle *)
  QCheck.Test.make ~name:"Eq<list int> agrees with OCaml equality" ~count:100
    QCheck.(pair (list (int_bound 3)) (list (int_bound 3)))
    (fun (xs, ys) ->
      let lit ns =
        List.fold_right
          (fun n acc -> Printf.sprintf "cons[int](%d, %s)" n acc)
          ns "nil[int]"
      in
      let src =
        eq_defs ^ Printf.sprintf "Eq<list int>.eq(%s, %s)" (lit xs) (lit ys)
      in
      let out = Pipeline.run ~file:"prop" src in
      Interp.flat_equal out.value (Interp.FlBool (xs = ys)))

let suite =
  [
    Alcotest.test_case "basic instance" `Quick test_basic_instance;
    Alcotest.test_case "triple nesting" `Quick test_triple_nesting;
    Alcotest.test_case "instance inside a generic" `Quick
      test_instance_in_generic;
    Alcotest.test_case "specialization by shadowing" `Quick
      test_specialization_by_shadowing;
    Alcotest.test_case "multi-parameter instance" `Quick
      test_multi_param_parameterized;
    Alcotest.test_case "associated types in instances" `Quick
      test_parameterized_with_assoc;
    Alcotest.test_case "refinement between instances" `Quick
      test_refining_parameterized;
    Alcotest.test_case "context through refinement (Ord<list t>)" `Quick
      test_context_through_refinement;
    Alcotest.test_case "prelude algorithms at list types" `Quick
      test_prelude_generic_algorithms_at_lists;
    Alcotest.test_case "translation shape (fix + forall)" `Quick
      test_translation_shape;
    Alcotest.test_case "global mode compatible" `Quick
      test_global_mode_compatible;
    Alcotest.test_case "global mode overlap rejected" `Quick
      test_global_mode_overlap_rejected;
    Alcotest.test_case "unused parameter rejected" `Quick
      test_unused_param_rejected;
    Alcotest.test_case "missing context rejected" `Quick
      test_missing_context_rejected;
    Alcotest.test_case "divergence fused" `Quick test_divergence_fused;
    QCheck_alcotest.to_alcotest prop_parameterized_agreement;
  ]
