(** Executable counterparts of the paper's metatheory.

    Theorem 1 (Section 4) and Theorem 2 (Section 5) state that the
    translation preserves well-typing: if [Γ ⊢ e : τ ⇒ f] and Γ
    corresponds to a System F environment Σ, then [Σ ⊢ f : τ'] with
    [Γ ⊢ τ ⇒ τ'].  The paper proves this in Isabelle; this module
    checks the statement {e per program}: for a closed FG program we

    + type check and translate it ([Γ ⊢ e : τ ⇒ f]),
    + independently re-check the output with the System F checker
      ([⊢ f : τ']), and
    + compare [τ'] against the translation of [τ], up to alpha.

    Run over the whole paper corpus and over thousands of
    randomly generated well-typed programs, this is the testing
    substitute for the mechanized proof (see DESIGN.md §3).

    {!check_agreement} additionally checks semantic agreement — the
    direct FG interpreter and the System F evaluation of the translation
    compute the same first-order value — which is stronger than anything
    the paper claims, and a good differential oracle for both
    implementations. *)

open Fg_util
module F = Fg_systemf

type report = {
  fg_ty : Ast.ty;  (** τ: the FG type of the program *)
  elaborated : Ast.exp;
      (** the program with implicit instantiations made explicit *)
  f_exp : F.Ast.exp;  (** f: the translation *)
  f_ty : F.Ast.ty;  (** τ': the System F type of the translation *)
  expected_f_ty : F.Ast.ty;  (** the translation of τ *)
}

(** The theorem statement on an already-elaborated program: re-check the
    translation in System F and compare its type (up to alpha) against
    the translation of the FG type.  Factored out so drivers that
    obtained the elaboration some other way — a {!Session} checking
    against a cached prelude — run exactly the same verification. *)
let report_of_elaboration ((fg_ty, elaborated, f_exp) : Ast.ty * Ast.exp * F.Ast.exp)
    : report =
  let f_ty = F.Typecheck.typecheck f_exp in
  let expected_f_ty = Types.translate_ty (Env.create ()) fg_ty in
  if not (F.Ast.alpha_equal f_ty expected_f_ty) then
    Diag.error Diag.Translate
      "translation preserves typing FAILED:@ FG type %s@ translated type %s@ \
       but System F assigns %s"
      (Pretty.ty_to_string fg_ty)
      (F.Pretty.ty_to_string expected_f_ty)
      (F.Pretty.ty_to_string f_ty);
  { fg_ty; elaborated; f_exp; f_ty; expected_f_ty }

(** Check Theorem 1/2 on one closed program.  Raises a diagnostic if the
    program is ill-typed, if the translation fails to re-check in System
    F, or if the types disagree. *)
let check_translation ?resolution (e : Ast.exp) : report =
  report_of_elaboration (Check.elaborate ?resolution e)

let check_translation_result ?resolution e =
  Diag.protect (fun () -> check_translation ?resolution e)

type agreement = {
  direct : Interp.flat;  (** value from the direct FG interpreter *)
  translated : Interp.flat;  (** value from evaluating the translation *)
}

(** Check that the direct interpreter and the translation agree on the
    program's value (first-order part).  Requires the program to be
    well-typed; both evaluations share the same fuel bound. *)
let check_agreement ?resolution ?fuel (e : Ast.exp) : agreement =
  let report = check_translation ?resolution e in
  let direct = Interp.flatten (Interp.run_value ?fuel report.elaborated) in
  let translated = Interp.flatten_f (F.Eval.run_value ?fuel report.f_exp) in
  if not (Interp.flat_equal direct translated) then
    Diag.error Diag.Eval
      "semantic agreement FAILED: direct interpreter computed %s but the \
       translation computed %s"
      (Interp.flat_to_string direct)
      (Interp.flat_to_string translated);
  { direct; translated }

let check_agreement_result ?resolution ?fuel e =
  Diag.protect (fun () -> check_agreement ?resolution ?fuel e)
