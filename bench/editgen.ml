(* Edit-trace generator for the workspace language service.

   Builds an in-process workspace, opens every program in the
   programs/ corpus, then drives a synthetic editing session against
   each: repeated single-character line-preserving edits (an integer
   literal bumped and reverted), each immediately re-checked, the way
   an editor's diagnostics-on-type loop would.  Reports the
   edit-to-diagnostics latency distribution and asserts the p95
   against a bar.

   Also cross-checks correctness on every edit: the diagnostics
   payload after each change must be byte-identical to a cold check of
   the same text in a fresh session (the warm path replays cached
   declarations; the bytes must not know that).

   Run:  dune exec bench/editgen.exe                  (40 edits/program)
         EDITGEN_EDITS=6 dune exec bench/editgen.exe  (CI smoke)
         EDITGEN_P95_MS=50 dune exec bench/editgen.exe  (assert the bar)

   Exits nonzero on any byte mismatch or a p95 above the bar. *)

open Fg_util
module C = Fg_core
module W = Fg_workspace.Workspace

let edits_per_program =
  match Sys.getenv_opt "EDITGEN_EDITS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 40)
  | None -> 40

(* The latency bar, in milliseconds; 0 disables the assertion. *)
let p95_bar_ms =
  match Sys.getenv_opt "EDITGEN_P95_MS" with
  | Some s -> ( try float_of_string s with _ -> 0.)
  | None -> 0.

let programs_dir =
  if Sys.file_exists "programs" then "programs"
  else if Sys.file_exists "../programs" then "../programs"
  else failwith "editgen: cannot find the programs/ corpus from the cwd"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let corpus =
  Sys.readdir programs_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".fg")
  |> List.sort String.compare
  |> List.map (fun f ->
         let path = Filename.concat programs_dir f in
         (path, read_file path))

(* Digit positions in the text — flipping one digit to another is the
   canonical line-preserving edit (same byte count, same line/column
   geometry for everything after it). *)
let digit_offsets text =
  let acc = ref [] in
  String.iteri
    (fun i c -> if c >= '0' && c <= '9' then acc := i :: !acc)
    text;
  Array.of_list (List.rev !acc)

let ok_exn name = function
  | Ok payload -> payload
  | Error e -> failwith (Printf.sprintf "%s: %s %s" name e.W.ws_code e.W.ws_msg)

let () =
  if corpus = [] then failwith "editgen: empty corpus";
  let ws = W.create () in
  let hist = Telemetry.Histogram.create () in
  let mismatches = ref 0 in
  let total_edits = ref 0 in
  let version = ref 0 in
  List.iter
    (fun (path, text) ->
      incr version;
      ignore
        (ok_exn "open"
           (W.open_doc ws ~name:path ~version:!version ~prelude:true
              ~global_models:false ~backend:C.Backend.Dict text));
      let digits = digit_offsets text in
      if Array.length digits > 0 then begin
        let txt = ref text in
        for i = 1 to edits_per_program do
          let off = digits.(i mod Array.length digits) in
          let old_c = !txt.[off] in
          let new_c = if old_c = '9' then '1' else Char.chr (Char.code old_c + 1) in
          incr version;
          let t0 = Telemetry.now_ns () in
          let payload =
            ok_exn "change"
              (W.change_doc ws ~name:path ~version:!version
                 (W.Edits
                    [ { W.e_start = off; e_len = 1;
                        e_text = String.make 1 new_c } ]))
          in
          Telemetry.Histogram.observe hist (Telemetry.now_ns () - t0);
          incr total_edits;
          txt :=
            String.sub !txt 0 off
            ^ String.make 1 new_c
            ^ String.sub !txt (off + 1) (String.length !txt - off - 1);
          (* Cold cross-check on the first and last edit of each
             program (a full fresh-workspace check per edit would
             dominate the run). *)
          if i = 1 || i = edits_per_program then begin
            let cold = W.create () in
            let cold_payload =
              ok_exn "cold open"
                (W.open_doc cold ~name:path ~version:1 ~prelude:true
                   ~global_models:false ~backend:C.Backend.Dict !txt)
            in
            if cold_payload <> payload then begin
              incr mismatches;
              Fmt.epr "editgen: MISMATCH %s after edit %d@." path i
            end
          end
        done
      end;
      ignore (ok_exn "close" (W.close_doc ws ~name:path)))
    corpus;
  let p50 = float_of_int (Telemetry.Histogram.percentile hist 50.) /. 1e6 in
  let p95 = float_of_int (Telemetry.Histogram.percentile hist 95.) /. 1e6 in
  let p99 = float_of_int (Telemetry.Histogram.percentile hist 99.) /. 1e6 in
  Fmt.pr
    "editgen: %d programs, %d edits; edit-to-diagnostics p50=%.2fms \
     p95=%.2fms p99=%.2fms (mismatches: %d)@."
    (List.length corpus) !total_edits p50 p95 p99 !mismatches;
  if !mismatches > 0 then exit 1;
  if p95_bar_ms > 0. && p95 > p95_bar_ms then begin
    Fmt.epr "editgen: p95 %.2fms exceeds the %.2fms bar@." p95 p95_bar_ms;
    exit 1
  end
