lib/util/names.mli: Map Set
