lib/fg/equality.ml: Ast Diag Fg_congruence Fg_util Hashtbl List Pp_util Pretty Printf String
