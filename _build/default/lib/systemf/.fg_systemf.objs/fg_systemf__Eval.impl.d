lib/systemf/eval.ml: Ast Diag Fg_util Fmt List Names Pp_util Prims String
