(* Tests for the semiring-generic matrix library (lib/fg/matrix_lib):
   one generic mat_mul under three named semiring models, plus a
   property test against an OCaml reference multiplication. *)

open Fg_core

let check body expected =
  match Pipeline.run_result ~file:"matrix" (Matrix_lib.wrap body) with
  | Ok out ->
      Alcotest.(check string) body expected (Interp.flat_to_string out.value)
  | Error d -> Alcotest.failf "%s: %s" body (Fg_util.Diag.to_string d)

let a = Matrix_lib.int_matrix [ [ 1; 2 ]; [ 3; 4 ] ]
let b = Matrix_lib.int_matrix [ [ 5; 6 ]; [ 7; 8 ] ]

let test_dot () =
  check
    (Printf.sprintf "using arith in dot[int](%s, %s)"
       (Prelude.int_list [ 1; 2; 3 ])
       (Prelude.int_list [ 4; 5; 6 ]))
    "32";
  check "using arith in dot[int](nil[int], nil[int])" "0";
  (* tropical dot = min over sums *)
  check
    (Printf.sprintf "using tropical in dot[int](%s, %s)"
       (Prelude.int_list [ 3; 10 ])
       (Prelude.int_list [ 4; 1 ]))
    "7"

let test_vec_ops () =
  check
    (Printf.sprintf "using arith in vec_add[int](%s, %s)"
       (Prelude.int_list [ 1; 2 ])
       (Prelude.int_list [ 10; 20 ]))
    "[11, 22]";
  check
    (Printf.sprintf "using arith in vec_scale[int](3, %s)"
       (Prelude.int_list [ 1; 2 ]))
    "[3, 6]"

let test_mat_vec () =
  check
    (Printf.sprintf "using arith in mat_vec[int](%s, %s)" a
       (Prelude.int_list [ 1; 1 ]))
    "[3, 7]"

let test_transpose () =
  check (Printf.sprintf "using arith in transpose[int](%s)" a) "[[1, 3], [2, 4]]";
  check
    (Printf.sprintf "using arith in transpose[int](transpose[int](%s))" a)
    "[[1, 2], [3, 4]]";
  (* non-square *)
  check
    (Printf.sprintf "using arith in transpose[int](%s)"
       (Matrix_lib.int_matrix [ [ 1; 2; 3 ] ]))
    "[[1], [2], [3]]"

let test_mat_mul_arith () =
  check (Printf.sprintf "using arith in mat_mul[int](%s, %s)" a b)
    "[[19, 22], [43, 50]]";
  (* identity is neutral *)
  check
    (Printf.sprintf
       "using arith in mat_mul[int](%s, identity_matrix[int](2))" a)
    "[[1, 2], [3, 4]]";
  check
    (Printf.sprintf
       "using arith in mat_mul[int](identity_matrix[int](2), %s)" a)
    "[[1, 2], [3, 4]]"

let test_mat_pow () =
  check (Printf.sprintf "using arith in mat_pow[int](%s, 2, 0)" a)
    "[[1, 0], [0, 1]]";
  check (Printf.sprintf "using arith in mat_pow[int](%s, 2, 1)" a)
    "[[1, 2], [3, 4]]";
  check (Printf.sprintf "using arith in mat_pow[int](%s, 2, 2)" a)
    "[[7, 10], [15, 22]]"

let test_boolean_reachability () =
  (* path graph 1 -> 2 -> 3: A^2 exposes the two-step path *)
  let g =
    Matrix_lib.bool_matrix
      [
        [ false; true; false ]; [ false; false; true ]; [ false; false; false ];
      ]
  in
  check
    (Printf.sprintf "using boolean in mat_pow[bool](%s, 3, 2)" g)
    "[[false, false, true], [false, false, false], [false, false, false]]";
  (* 3-cycle: A^3 has the diagonal *)
  let c =
    Matrix_lib.bool_matrix
      [
        [ false; true; false ]; [ false; false; true ]; [ true; false; false ];
      ]
  in
  check
    (Printf.sprintf "using boolean in mat_pow[bool](%s, 3, 3)" c)
    "[[true, false, false], [false, true, false], [false, false, true]]"

let test_tropical_shortest_paths () =
  (* weights 1 -3-> 2 -4-> 3 ; W * W gives 2-step shortest paths *)
  let inf = 1000000 in
  let w =
    Matrix_lib.int_matrix
      [ [ 0; 3; inf ]; [ inf; 0; 4 ]; [ inf; inf; 0 ] ]
  in
  check (Printf.sprintf "using tropical in mat_mul[int](%s, %s)" w w)
    "[[0, 3, 7], [1000000, 0, 4], [1000000, 1000000, 0]]";
  (* a shortcut beats a long direct edge: 1->3 direct 100 vs 3+4 *)
  let w2 =
    Matrix_lib.int_matrix [ [ 0; 3; 100 ]; [ inf; 0; 4 ]; [ inf; inf; 0 ] ]
  in
  check (Printf.sprintf "using tropical in mat_mul[int](%s, %s)" w2 w2)
    "[[0, 3, 7], [1000000, 0, 4], [1000000, 1000000, 0]]"

let test_overlapping_semirings_need_using () =
  (* arith and tropical both model Semiring<int>; neither is active
     without `using`, so the call is rejected *)
  match
    Pipeline.run_result ~file:"matrix"
      (Matrix_lib.wrap "dot[int](nil[int], nil[int])")
  with
  | Ok _ -> Alcotest.fail "expected resolution failure"
  | Error d ->
      Alcotest.(check bool) "needs using" true
        (Astring_contains.contains ~needle:"no model of Semiring<int>"
           d.message)

(* OCaml reference multiplication for the property test. *)
let ocaml_mat_mul a b =
  let cols_b = List.length (List.hd b) in
  List.map
    (fun row ->
      List.init cols_b (fun j ->
          List.fold_left2
            (fun acc x brow -> acc + (x * List.nth brow j))
            0 row b))
    a

let prop_matmul_matches_reference =
  QCheck.Test.make ~name:"FG mat_mul matches OCaml reference (2x2, 3x3)"
    ~count:40
    QCheck.(
      pair (int_range 2 3)
        (pair (list_of_size (QCheck.Gen.return 9) (int_bound 9))
           (list_of_size (QCheck.Gen.return 9) (int_bound 9))))
    (fun (n, (xs, ys)) ->
      let take_matrix vals =
        List.init n (fun i -> List.init n (fun j -> List.nth vals ((i * n) + j)))
      in
      let ma = take_matrix xs and mb = take_matrix ys in
      let body =
        Printf.sprintf "using arith in mat_mul[int](%s, %s)"
          (Matrix_lib.int_matrix ma) (Matrix_lib.int_matrix mb)
      in
      let out = Pipeline.run ~file:"prop" (Matrix_lib.wrap body) in
      let expected =
        Interp.FlList
          (List.map
             (fun row -> Interp.FlList (List.map (fun x -> Interp.FlInt x) row))
             (ocaml_mat_mul ma mb))
      in
      Interp.flat_equal out.value expected)

let suite =
  [
    Alcotest.test_case "dot product" `Quick test_dot;
    Alcotest.test_case "vector ops" `Quick test_vec_ops;
    Alcotest.test_case "mat_vec" `Quick test_mat_vec;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "mat_mul (arith)" `Quick test_mat_mul_arith;
    Alcotest.test_case "mat_pow" `Quick test_mat_pow;
    Alcotest.test_case "boolean semiring = reachability" `Quick
      test_boolean_reachability;
    Alcotest.test_case "tropical semiring = shortest paths" `Quick
      test_tropical_shortest_paths;
    Alcotest.test_case "overlap managed by using" `Quick
      test_overlapping_semirings_need_using;
    QCheck_alcotest.to_alcotest prop_matmul_matches_reference;
  ]
