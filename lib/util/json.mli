(** A minimal JSON tree and printer — just enough for the driver's
    machine-readable output ([fgc --format=json], [--stats]).  Emission
    only; the toolchain never parses JSON, so there is no reader. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact rendering (no insignificant whitespace beyond single
    spaces); strings are escaped per RFC 8259. *)
val to_string : t -> string

val pp : t Fmt.t
