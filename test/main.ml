(* Test runner: every suite in one alcotest binary, so `dune runtest`
   runs the whole reproduction's test battery. *)

let () =
  Alcotest.run "fg"
    [
      ("util", Test_util.suite);
      ("json", Test_json.suite);
      ("telemetry", Test_telemetry.suite);
      ("coverage", Test_coverage.suite);
      ("profile", Test_profile.suite);
      ("syntax", Test_syntax.suite);
      ("unionfind", Test_unionfind.suite);
      ("congruence", Test_congruence.suite);
      ("systemf", Test_systemf.suite);
      ("systemf-smallstep", Test_systemf_step.suite);
      ("fg-parser", Test_fg_parser.suite);
      ("fg-pretty", Test_fg_pretty.suite);
      ("fg-equality", Test_equality.suite);
      ("fg-env", Test_env.suite);
      ("fg-types", Test_types.suite);
      ("fg-check", Test_fg_check.suite);
      ("fg-translate", Test_fg_translate.suite);
      ("fg-interp", Test_fg_interp.suite);
      ("corpus", Test_corpus.suite);
      ("theorems", Test_theorems.suite);
      ("prelude", Test_prelude.suite);
      ("resolution", Test_resolution.suite);
      ("parameterized-models", Test_parameterized.suite);
      ("implicit-instantiation", Test_implicit.suite);
      ("member-defaults", Test_defaults.suite);
      ("named-models", Test_named_models.suite);
      ("nested-requirements", Test_requires.suite);
      ("graph-library", Test_graph.suite);
      ("matrix-library", Test_matrix.suite);
      ("diagnostics", Test_diagnostics.suite);
      ("recovery", Test_recovery.suite);
      ("session", Test_session.suite);
      ("diskcache", Test_diskcache.suite);
      ("cli", Test_cli.suite);
      ("wire-protocol", Test_protocol.suite);
      ("server", Test_server.suite);
      ("program-files", Test_programs.suite);
      ("roundtrip", Test_roundtrip.suite);
      ("fuzz", Test_fuzz.suite);
      ("scaling-families", Test_genprog.suite);
      ("backend", Test_backend.suite);
      ("loc", Test_loc.suite);
      ("workspace", Test_workspace.suite);
    ]
